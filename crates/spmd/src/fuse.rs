//! The plan compiler: fuse a whole statement's schedule + pack + compute
//! into one specialized per-node epoch.
//!
//! The interpreted statement path ([`crate::statement::assign_expr`])
//! pays per-statement orchestration every epoch: one full schedule
//! execution — pool dispatch, whole-array staging clone, per-run shape
//! dispatch — *per operand*, plus a final compute dispatch. The paper's
//! point is that all of that structure is computable ahead of execution:
//! the access sequence, the communication sets, and the contiguity
//! classes are pure functions of `(p, k, section)` parameters, never of
//! array contents.
//!
//! This module compiles a statement shape once into a [`FusedStatement`]:
//! a per-node program whose every step — same-node move, gather, scatter,
//! elementwise apply — is bound to a **gap-specialized kernel function
//! pointer** selected from a macro-expanded shape table over
//! [`ShapeClass`] ([`bcag_core::lower`]). The literal gap constant-folds
//! through the [`PackValue`] primitives, so the executed epoch contains
//! no per-run `match`, no per-statement schedule walk, and exactly **one
//! pool dispatch** for the whole statement: each node applies
//! self-transfers into arena-recycled staging snapshots, packs and sends
//! its outgoing traffic, drains a counted inbox, then runs the
//! owner-computes loop — pack→send→recv→unpack→apply as one fused
//! function. Because the compiler sees every operand at once, it also
//! **coalesces messages by destination**: all logical (operand, peer)
//! messages of the statement merge into one physical message per peer
//! per epoch — an optimization the interpreted path structurally cannot
//! perform, since it exchanges operand by operand in separate epochs.
//! Trace counters are still charged per logical message at canonical
//! wire size, so deterministic totals keep parity.
//!
//! Programs are cached in the sharded plan cache ([`crate::cache::fused`])
//! next to the schedules they were compiled from, so single-flight builds
//! and LRU eviction cover them for free. The fused path is selected by
//! [`default_fused`] (`BCAG_FUSE=on|off`, default on) and keeps **bit-exact
//! parity** with the interpreted path: staging snapshots reproduce the
//! interpreted `tmp = a.clone()` semantics node-locally, traversal order
//! equals [`RunPlan::for_each_segment`] order, and every deterministic
//! trace counter total (`elements_moved`, `messages_sent`,
//! `transport_bytes_tx/_rx`, `runs_coalesced`, …) matches the interpreted
//! path's by construction.
//!
//! Under [`bcag_core::tune::TuneMode::Auto`] (the default) epochs whose
//! working set spills L2 are **blocked**: [`epoch_block_elems`] derives
//! an L2-resident chunk size, physical messages split into ≤-block-sized
//! payloads at compile time (sender and receiver derive identical split
//! points from the same schedule, so no wire metadata is added), and
//! communication-free epochs stage → move → apply one L2-sized address
//! range at a time instead of snapshotting the whole local image. The
//! block size is part of the fused cache key, so `BCAG_TUNE` A/B flips
//! never reuse programs compiled for the other regime.
//!
//! Inside a `bcag spmd` node process the fused path is not used — the
//! multi-process executor has its own shadow-application protocol — so
//! [`crate::statement::assign_expr`] falls back to the interpreted path
//! whenever a proc session is active.
//!
//! [`RunPlan::for_each_segment`]: bcag_core::runs::RunPlan::for_each_segment

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use bcag_core::error::{BcagError, Result};
use bcag_core::lower::{lower_plan, ShapeClass};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_core::tune::{self, TuneMode};

use crate::cache;
use crate::comm::wire::{self, PackValue};
use crate::comm::ExecMode;
use crate::darray::DistArray;
use crate::pack::{self, PackMode};
use crate::pool::{self, lock_clean, LaunchMode};
use crate::transport::{self, TransportKind};

/// Whether [`crate::statement::assign_expr`] routes statements through
/// the fused plan compiler or the interpreted per-operand path — the A/B
/// switch of the fusion work, in the spirit of [`LaunchMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedMode {
    /// Compile and run fused per-node epochs (the default).
    On,
    /// Interpret the statement operand by operand (the historical path).
    Off,
}

impl FusedMode {
    /// Short human-readable name (used by benches and the flight
    /// recorder).
    pub fn name(&self) -> &'static str {
        match self {
            FusedMode::On => "fused",
            FusedMode::Off => "interp",
        }
    }
}

/// 0 = unset (read the env var on first use), 1 = On, 2 = Off.
static DEFAULT_FUSED: AtomicU8 = AtomicU8::new(0);

/// The process-default [`FusedMode`]. First use reads `BCAG_FUSE`
/// (`off`/`0` disable fusion, anything else — including unset — keeps it
/// on); later uses return the cached choice.
pub fn default_fused() -> FusedMode {
    match DEFAULT_FUSED.load(Ordering::Relaxed) {
        1 => FusedMode::On,
        2 => FusedMode::Off,
        _ => {
            let mode = match std::env::var("BCAG_FUSE") {
                Ok(v) if v.trim().eq_ignore_ascii_case("off") || v.trim() == "0" => FusedMode::Off,
                _ => FusedMode::On,
            };
            set_default_fused(mode);
            mode
        }
    }
}

/// Overrides the process-default [`FusedMode`] (benches and differential
/// tests flip this around [`crate::statement::assign_expr`] calls).
pub fn set_default_fused(mode: FusedMode) {
    let v = match mode {
        FusedMode::On => 1,
        FusedMode::Off => 2,
    };
    DEFAULT_FUSED.store(v, Ordering::Relaxed);
}

/// 0 = no fused epoch ran yet, 1 = last epoch was unblocked, 2 = last
/// epoch ran L2-blocked — the flight recorder's companion to
/// [`crate::pack::last_pack_mode`].
static LAST_BLOCKED: AtomicU8 = AtomicU8::new(0);

pub(crate) fn note_blocked(blocked: bool) {
    LAST_BLOCKED.store(if blocked { 2 } else { 1 }, Ordering::Relaxed);
}

/// Whether the most recent fused epoch on this process ran L2-blocked;
/// `None` before any fused epoch executed.
pub fn last_blocked() -> Option<bool> {
    match LAST_BLOCKED.load(Ordering::Relaxed) {
        1 => Some(false),
        2 => Some(true),
        _ => None,
    }
}

/// Transfer block size (in elements) for a statement whose LHS section
/// is `sec_a`: zero (unblocked) under [`TuneMode::Fixed`], otherwise the
/// L2-residency cap of [`tune::block_elems_for`] — zero again when the
/// statement's working set fits. The value feeds [`compile`] and is part
/// of the fused cache key ([`crate::cache::fused`]), so `BCAG_TUNE` A/B
/// flips and test-local L2 overrides never share compiled programs.
pub fn epoch_block_elems<T: PackValue>(sec_a: &RegularSection) -> usize {
    match tune::default_tune() {
        TuneMode::Fixed => 0,
        TuneMode::Auto => tune::block_elems_for(
            sec_a.count() as u64,
            std::mem::size_of::<T>(),
            tune::l2_bytes(),
        ),
    }
}

/// Upper bound on the number of message blocks one directed (src, dst)
/// pair may split into per epoch — half the shm fabric's per-pair SPSC
/// ring capacity, so an epoch's entire blocked send phase fits in the
/// ring and a send never has to wait for the peer (which is itself
/// still sending) to drain it. [`compile`] widens a pair's block size
/// past the L2 target rather than exceed this count.
const MAX_BLOCKS_PER_PEER: usize = crate::transport::ring::RING_CAP / 2;

/// Gather kernel: append `len` elements read from `src` at
/// `(addr, addr + gap, …)` onto the message buffer. The gap is
/// constant-folded for the specialized classes.
type GatherFn<T> = fn(&mut Vec<T>, &[T], usize, usize, usize);

/// Scatter kernel: write a packed value run into `dst` at
/// `(addr, addr + gap, …)`.
type ScatterFn<T> = fn(&mut [T], usize, usize, &[T]);

/// Same-node move kernel: `(dst, src, daddr, dgap, saddr, sgap, len)`,
/// both gaps constant-folded for the specialized class pairs.
type MoveFn<T> = fn(&mut [T], &[T], usize, usize, usize, usize, usize);

/// Elementwise apply kernel: `(local, stagings, args, f, addr, gap,
/// len)` — the owner-computes loop body with the LHS gap
/// constant-folded.
type ApplyFn<T> = fn(&mut [T], &[Vec<T>], &mut Vec<T>, &dyn Fn(&[T]) -> T, usize, usize, usize);

/// Selects the gather kernel for one source shape class: the macro
/// expands one non-capturing closure per literal gap, so the
/// [`PackValue::extend_run`] gap `match` folds away at monomorphization.
fn gather_kernel<T: PackValue>(class: ShapeClass) -> GatherFn<T> {
    macro_rules! k {
        ($g:literal) => {
            |out: &mut Vec<T>, src: &[T], addr: usize, _gap: usize, len: usize| {
                T::extend_run(out, src, addr, $g, len)
            }
        };
    }
    match class {
        ShapeClass::Memcpy => k!(1),
        ShapeClass::Stride2 => k!(2),
        ShapeClass::Stride3 => k!(3),
        ShapeClass::Stride4 => k!(4),
        ShapeClass::Wide => |out: &mut Vec<T>, src: &[T], addr: usize, gap: usize, len: usize| {
            T::extend_run(out, src, addr, gap, len)
        },
    }
}

/// Selects the scatter kernel for one destination shape class (see
/// [`gather_kernel`]).
fn scatter_kernel<T: PackValue>(class: ShapeClass) -> ScatterFn<T> {
    macro_rules! k {
        ($g:literal) => {
            |dst: &mut [T], addr: usize, _gap: usize, vals: &[T]| T::write_run(dst, addr, $g, vals)
        };
    }
    match class {
        ShapeClass::Memcpy => k!(1),
        ShapeClass::Stride2 => k!(2),
        ShapeClass::Stride3 => k!(3),
        ShapeClass::Stride4 => k!(4),
        ShapeClass::Wide => {
            |dst: &mut [T], addr: usize, gap: usize, vals: &[T]| T::write_run(dst, addr, gap, vals)
        }
    }
}

/// Selects the same-node move kernel for one `(source, destination)`
/// shape class pair: a 4×4 grid of gap-literal kernels (the `(1, 1)`
/// cell is a straight slice copy), with one runtime-gap fallback for
/// pairs involving a wide stride.
fn move_kernel<T: PackValue>(s: ShapeClass, d: ShapeClass) -> MoveFn<T> {
    macro_rules! k {
        ($sg:literal, $dg:literal) => {
            |dst: &mut [T], src: &[T], da: usize, _dg: usize, sa: usize, _sg: usize, len: usize| {
                for j in 0..len {
                    dst[da + j * $dg] = src[sa + j * $sg].clone();
                }
            }
        };
    }
    use ShapeClass::*;
    match (s, d) {
        (Memcpy, Memcpy) => {
            |dst: &mut [T], src: &[T], da: usize, _dg: usize, sa: usize, _sg: usize, len: usize| {
                dst[da..da + len].clone_from_slice(&src[sa..sa + len])
            }
        }
        (Memcpy, Stride2) => k!(1, 2),
        (Memcpy, Stride3) => k!(1, 3),
        (Memcpy, Stride4) => k!(1, 4),
        (Stride2, Memcpy) => k!(2, 1),
        (Stride2, Stride2) => k!(2, 2),
        (Stride2, Stride3) => k!(2, 3),
        (Stride2, Stride4) => k!(2, 4),
        (Stride3, Memcpy) => k!(3, 1),
        (Stride3, Stride2) => k!(3, 2),
        (Stride3, Stride3) => k!(3, 3),
        (Stride3, Stride4) => k!(3, 4),
        (Stride4, Memcpy) => k!(4, 1),
        (Stride4, Stride2) => k!(4, 2),
        (Stride4, Stride3) => k!(4, 3),
        (Stride4, Stride4) => k!(4, 4),
        (Wide, _) | (_, Wide) => {
            |dst: &mut [T], src: &[T], da: usize, dg: usize, sa: usize, sg: usize, len: usize| {
                for j in 0..len {
                    dst[da + j * dg] = src[sa + j * sg].clone();
                }
            }
        }
    }
}

/// Selects the owner-computes apply kernel for one LHS segment class:
/// the traversal gap folds into the loop body, so the hot loop is a
/// plain affine walk with no per-element address table.
fn apply_kernel<T: PackValue>(class: ShapeClass) -> ApplyFn<T> {
    macro_rules! k {
        ($g:literal) => {
            |local: &mut [T],
             stagings: &[Vec<T>],
             args: &mut Vec<T>,
             f: &dyn Fn(&[T]) -> T,
             addr: usize,
             _gap: usize,
             len: usize| {
                for j in 0..len {
                    let at = addr + j * $g;
                    args.clear();
                    for st in stagings {
                        args.push(st[at].clone());
                    }
                    local[at] = f(args.as_slice());
                }
            }
        };
    }
    match class {
        ShapeClass::Memcpy => k!(1),
        ShapeClass::Stride2 => k!(2),
        ShapeClass::Stride3 => k!(3),
        ShapeClass::Stride4 => k!(4),
        ShapeClass::Wide => |local: &mut [T],
                             stagings: &[Vec<T>],
                             args: &mut Vec<T>,
                             f: &dyn Fn(&[T]) -> T,
                             addr: usize,
                             gap: usize,
                             len: usize| {
            for j in 0..len {
                let at = addr + j * gap;
                args.clear();
                for st in stagings {
                    args.push(st[at].clone());
                }
                local[at] = f(args.as_slice());
            }
        },
    }
}

/// One same-node transfer run, kernel-bound at compile time.
struct MoveStep<T> {
    dst: usize,
    dgap: usize,
    src: usize,
    sgap: usize,
    len: usize,
    kernel: MoveFn<T>,
}

/// One gather segment of an outgoing message, reading from operand
/// `op`'s local memory.
struct GatherStep<T> {
    op: usize,
    addr: usize,
    gap: usize,
    len: usize,
    kernel: GatherFn<T>,
}

/// One ≤-block-sized chunk of an outgoing physical message: the gather
/// segments whose packed payload this chunk carries. Unblocked plans
/// have exactly one block per peer.
struct SendBlock<T> {
    elements: usize,
    gathers: Vec<GatherStep<T>>,
}

/// The outgoing traffic from this node to `dst`: every operand's
/// transfers, packed back to back in operand order, split into
/// L2-blocked physical messages. The interpreted path exchanges operand
/// by operand in separate epochs; the fused compiler sees the whole
/// statement, so it merges them — one message (per block) per peer per
/// epoch. `charges` keeps one canonical wire size per *logical*
/// (operand, destination) message so trace totals still match the
/// interpreted path; they are emitted once per peer, on the first block.
struct SendPlan<T> {
    dst: usize,
    charges: Vec<u64>,
    blocks: Vec<SendBlock<T>>,
}

/// One scatter segment of an inbound message: where the next `len`
/// packed values (at `off` in the payload) land in operand `op`'s
/// staging buffer.
struct ScatterStep<T> {
    op: usize,
    addr: usize,
    gap: usize,
    len: usize,
    off: usize,
    kernel: ScatterFn<T>,
}

/// The expected inbound traffic from `src` — the schedule is global
/// knowledge, so the payload layout (operand order, then compiled run
/// order, split at the same block boundaries the sender derives) and
/// per-logical-message `charges` are compiled here and the wire carries
/// only values. `blocks[i]` scatters the `i`-th physical message from
/// `src`; each step's `off` is relative to that block's payload.
/// Per-producer FIFO on every in-process transport (one mpsc channel,
/// one SPSC ring per directed pair) keeps block order deterministic.
struct RecvPlan<T> {
    src: usize,
    charges: Vec<u64>,
    blocks: Vec<Vec<ScatterStep<T>>>,
}

/// One LHS traversal segment of the owner-computes loop.
struct ApplyStep<T> {
    addr: usize,
    gap: usize,
    len: usize,
    kernel: ApplyFn<T>,
}

/// One L2-sized address range `[lo, hi)` of a blocked
/// communication-free epoch: the same-node moves (per operand) and
/// apply segments clipped to the range, with staging-side addresses
/// rebased by `-lo`. The epoch stages, moves and applies one range at a
/// time, so the working set per range is `(operands + 1) × (hi - lo)`
/// elements instead of the whole local image. Bit-exact because ranges
/// partition the address space: each range's snapshot still reads
/// pre-statement values (earlier ranges wrote disjoint addresses), and
/// every apply address reads staging within its own range.
struct LocalBlock<T> {
    lo: usize,
    hi: usize,
    moves: Vec<Vec<MoveStep<T>>>,
    apply: Vec<ApplyStep<T>>,
}

/// The compiled epoch of one node: every data-movement and compute step
/// of the whole statement, kernel-bound, plus the precomputed trace
/// counter totals the epoch charges (identical to the interpreted
/// path's per-operand emissions, summed).
struct NodeProgram<T> {
    /// Same-node transfer runs, per operand.
    self_moves: Vec<Vec<MoveStep<T>>>,
    /// Outgoing physical messages, one per destination with traffic.
    sends: Vec<SendPlan<T>>,
    /// Expected inbound physical messages, one per source with traffic.
    recvs: Vec<RecvPlan<T>>,
    /// Owner-computes traversal segments.
    apply: Vec<ApplyStep<T>>,
    /// L2-blocked ranges for communication-free epochs (empty when the
    /// node communicates or the program is unblocked); when non-empty,
    /// `execute` runs these instead of `self_moves` + `apply`, which are
    /// still compiled so [`FusedStatement::census`] stays
    /// blocking-independent.
    local_blocks: Vec<LocalBlock<T>>,
    /// Total outgoing transfers (all destinations, self included).
    moved: u64,
    /// Non-empty non-self destinations (messages really sent).
    msgs: u64,
    /// Elements leaving this node.
    nonlocal: u64,
    /// Coalesced (multi-element) outgoing runs.
    seg_count: u64,
    /// Elements covered by those coalesced runs.
    seg_elems: u64,
}

/// In-memory fused message: the receiver routes by source node — the
/// payload layout is already compiled into its [`RecvPlan`].
struct FusedMsg<T> {
    src: u32,
    vals: Vec<T>,
}

/// Bytes of the source-node routing tag appended to wire-encoded fused
/// messages.
const WIRE_TAG_BYTES: usize = 4;

/// A whole statement `A(sec_a) = f(B₀(sec₀), …)` compiled to per-node
/// epochs: built once per statement shape by [`compile`], cached in the
/// sharded plan cache, executed many times by [`FusedStatement::execute`].
pub struct FusedStatement<T: PackValue> {
    p: i64,
    nodes: Vec<NodeProgram<T>>,
    /// Whether any node's epoch is L2-blocked (chunked messages or
    /// blocked local ranges) — drives the `tune_decision_blocked`
    /// counter and the flight recorder's blocked flag.
    blocked: bool,
}

/// Structural summary of a compiled [`FusedStatement`] — totals over all
/// nodes, for `bcag stats` and planning tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuseCensus {
    /// Outgoing messages compiled across all nodes and operands.
    pub sends: usize,
    /// Inbound message plans compiled across all nodes.
    pub recvs: usize,
    /// Same-node transfer runs compiled across all nodes and operands.
    pub self_moves: usize,
    /// Owner-computes traversal segments across all nodes.
    pub apply_segments: usize,
    /// Physical message blocks compiled across all nodes — equals the
    /// physical message count when unblocked, larger when L2-chunked.
    pub send_blocks: usize,
    /// L2-blocked local epoch ranges compiled across all nodes.
    pub local_blocks: usize,
}

impl<T: PackValue> FusedStatement<T> {
    /// Structural totals of the compiled program. `sends`/`recvs` count
    /// *logical* (operand, peer) messages — the interpreted path's unit —
    /// even though the fused epoch coalesces them into one physical
    /// message per peer.
    pub fn census(&self) -> FuseCensus {
        let mut c = FuseCensus::default();
        for n in &self.nodes {
            c.sends += n.sends.iter().map(|s| s.charges.len()).sum::<usize>();
            c.recvs += n.recvs.iter().map(|r| r.charges.len()).sum::<usize>();
            c.self_moves += n.self_moves.iter().map(Vec::len).sum::<usize>();
            c.apply_segments += n.apply.len();
            c.send_blocks += n.sends.iter().map(|s| s.blocks.len()).sum::<usize>();
            c.local_blocks += n.local_blocks.len();
        }
        c
    }

    /// Runs the fused epoch: one pool dispatch executes pack → send →
    /// recv → unpack → apply for the whole statement. `operands` must be
    /// the arrays the program was compiled for, in compile order (same
    /// `p`, `k`, and sections); contents are free to vary.
    pub fn execute<F>(
        &self,
        a: &mut DistArray<T>,
        operands: &[&DistArray<T>],
        f: F,
        launch: LaunchMode,
        kind: TransportKind,
    ) where
        F: Fn(&[T]) -> T + Sync,
    {
        assert_eq!(a.p(), self.p, "LHS machine size mismatch");
        let _sp = bcag_trace::span("fuse.execute");
        let _t = bcag_trace::timed_span("fuse_execute_ns");
        bcag_trace::set_tag("transport", kind.name());
        bcag_trace::count("fused_epochs", 1);
        // Fused epochs pack coalesced runs; note mode and blocking for
        // the flight recorder and the tuning counters.
        pack::note_pack_mode(PackMode::Runs);
        note_blocked(self.blocked);
        if self.blocked && bcag_trace::enabled() {
            bcag_trace::count("tune_decision_blocked", 1);
        }
        let nops = operands.len();
        let slots: Vec<Mutex<&mut Vec<T>>> = a.locals_mut().iter_mut().map(Mutex::new).collect();
        pool::launch_with(self.p, launch, kind, |me, ctx| {
            let _sp = bcag_trace::span("fuse.epoch.node");
            let prog = &self.nodes[me];
            let use_wire = ctx.serializes() && T::WIRE_BYTES.is_some();
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            // Blocked communication-free epoch: stage → move → apply one
            // L2-sized address range at a time. The folded counter
            // emissions are identical to the unblocked epoch's.
            if !prog.local_blocks.is_empty() {
                bcag_trace::count("elements_moved", prog.moved);
                bcag_trace::count("bytes_packed", prog.moved * std::mem::size_of::<T>() as u64);
                bcag_core::runs::count_coalesced(prog.seg_count, prog.seg_elems);
                bcag_trace::count("recv_wait_ns", 0);
                let fref: &dyn Fn(&[T]) -> T = &f;
                let mut args: Vec<T> = Vec::with_capacity(nops);
                for blk in &prog.local_blocks {
                    let mut stagings: Vec<Vec<T>> = Vec::with_capacity(nops);
                    for (op, b) in operands.iter().enumerate() {
                        let local_b = b.local(me as i64);
                        let mut st: Vec<T> = ctx.take_buf();
                        st.extend_from_slice(&local_a[blk.lo..blk.hi]);
                        for mv in &blk.moves[op] {
                            (mv.kernel)(&mut st, local_b, mv.dst, mv.dgap, mv.src, mv.sgap, mv.len);
                        }
                        stagings.push(st);
                    }
                    let window = &mut local_a[blk.lo..blk.hi];
                    for step in &blk.apply {
                        (step.kernel)(
                            window, &stagings, &mut args, fref, step.addr, step.gap, step.len,
                        );
                    }
                    for st in stagings {
                        ctx.put_buf(st);
                    }
                }
                return;
            }
            // Stage phase. Each operand's staging buffer is a snapshot
            // of this node's pre-statement LHS memory (the node-local
            // equivalent of the interpreted path's whole-array
            // `tmp = a.clone()`), then self-transfers land in it directly
            // and inbound messages scatter into it below. `local_a` is
            // not written until the apply phase, so every snapshot is
            // taken from clean pre-statement state.
            let mut stagings: Vec<Vec<T>> = Vec::with_capacity(nops);
            for (op, b) in operands.iter().enumerate() {
                let local_b = b.local(me as i64);
                let mut st: Vec<T> = ctx.take_buf();
                st.extend_from_slice(local_a);
                for mv in &prog.self_moves[op] {
                    (mv.kernel)(&mut st, local_b, mv.dst, mv.dgap, mv.src, mv.sgap, mv.len);
                }
                stagings.push(st);
            }
            // Send phase: one physical message per destination per
            // block, every operand's traffic packed back to back in
            // operand order (the receiver's plan was compiled to the
            // same layout and the same block boundaries).
            for send in &prog.sends {
                for (bi, blk) in send.blocks.iter().enumerate() {
                    let mut vals: Vec<T> = ctx.take_buf();
                    vals.reserve(blk.elements);
                    for g in &blk.gathers {
                        let local_b = operands[g.op].local(me as i64);
                        (g.kernel)(&mut vals, local_b, g.addr, g.gap, g.len);
                    }
                    if bi == 0 && bcag_trace::enabled() {
                        // Charged per *logical* (operand, destination)
                        // message at the canonical run-encoded size (span
                        // headers included even though fused messages
                        // carry no spans), once per peer on the first
                        // block, so counts and totals match the
                        // interpreted path on every backend.
                        for &tx in &send.charges {
                            bcag_trace::count("transport_bytes_tx", tx);
                            bcag_trace::record("msg_bytes", tx);
                            bcag_trace::record(
                                bcag_trace::intern(&format!("msg_bytes_to_{}", send.dst)),
                                tx,
                            );
                        }
                    }
                    if use_wire {
                        let mut bytes = wire::encode::<T>(&[], &vals);
                        bytes.extend_from_slice(&(me as u32).to_le_bytes());
                        ctx.send(send.dst, Box::new(bytes));
                        ctx.put_buf(vals);
                    } else {
                        ctx.send(
                            send.dst,
                            Box::new(FusedMsg {
                                src: me as u32,
                                vals,
                            }),
                        );
                    }
                }
            }
            // Counter totals were folded at compile time: one emission
            // per epoch instead of one per (operand, destination), with
            // identical totals.
            bcag_trace::count("elements_moved", prog.moved);
            bcag_trace::count("bytes_packed", prog.moved * std::mem::size_of::<T>() as u64);
            if prog.msgs > 0 {
                bcag_trace::count("messages_sent", prog.msgs);
                bcag_trace::count("elements_nonlocal", prog.nonlocal);
            }
            bcag_core::runs::count_coalesced(prog.seg_count, prog.seg_elems);
            // Receive phase: the counted inbox drain of the batched
            // executor, routed by the source tag since inbound order
            // across sources is nondeterministic. Blocks from one source
            // arrive in send order (per-producer FIFO), so a per-source
            // cursor selects the scatter plan for each inbound message.
            let mut wait_ns = 0u64;
            let mut next_blk = vec![0usize; prog.recvs.len()];
            let total_blocks: usize = prog.recvs.iter().map(|r| r.blocks.len()).sum();
            for _ in 0..total_blocks {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let env = ctx.recv();
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    wait_ns += ns;
                    bcag_trace::record("recv_wait_ns", ns);
                }
                let (src, vals) = if use_wire {
                    let mut bytes = *env
                        .downcast::<Vec<u8>>()
                        .expect("fused wire message payload type");
                    let tag_at = bytes.len() - WIRE_TAG_BYTES;
                    let src =
                        u32::from_le_bytes(bytes[tag_at..].try_into().expect("4 bytes")) as usize;
                    bytes.truncate(tag_at);
                    let mut spans: Vec<wire::RunSpan> = ctx.take_buf();
                    let mut vals: Vec<T> = ctx.take_buf();
                    wire::decode_into(&bytes, &mut spans, &mut vals);
                    ctx.put_buf(spans);
                    (src, vals)
                } else {
                    let msg = *env
                        .downcast::<FusedMsg<T>>()
                        .expect("fused message payload type");
                    (msg.src as usize, msg.vals)
                };
                let pi = prog
                    .recvs
                    .iter()
                    .position(|r| r.src == src)
                    .expect("inbound message matches a compiled recv plan");
                let plan = &prog.recvs[pi];
                let bi = next_blk[pi];
                next_blk[pi] += 1;
                if bi == 0 {
                    for &rx in &plan.charges {
                        bcag_trace::count("transport_bytes_rx", rx);
                    }
                }
                for sc in &plan.blocks[bi] {
                    (sc.kernel)(
                        &mut stagings[sc.op],
                        sc.addr,
                        sc.gap,
                        &vals[sc.off..sc.off + sc.len],
                    );
                }
                ctx.put_buf(vals);
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
            // Apply phase: the owner-computes loop over kernel-bound LHS
            // segments, reading all stagings in operand order — the same
            // addresses, in the same order, with the same argument
            // values as the interpreted compute phase.
            let fref: &dyn Fn(&[T]) -> T = &f;
            let mut args: Vec<T> = Vec::with_capacity(nops);
            for step in &prog.apply {
                (step.kernel)(
                    local_a, &stagings, &mut args, fref, step.addr, step.gap, step.len,
                );
            }
            for st in stagings {
                ctx.put_buf(st);
            }
        });
    }
}

/// Appends one gather run to `plan`, splitting it across ≤`cap`-element
/// message blocks. `cur` tracks the open block's fill and persists
/// across runs and operands, so block boundaries depend only on the
/// compiled run sequence — which sender and receiver share.
fn push_send_run<T: PackValue>(
    plan: &mut SendPlan<T>,
    cur: &mut usize,
    cap: usize,
    op: usize,
    mut addr: usize,
    gap: usize,
    mut len: usize,
    kernel: GatherFn<T>,
) {
    while len > 0 {
        if plan.blocks.is_empty() || *cur == cap {
            plan.blocks.push(SendBlock {
                elements: 0,
                gathers: Vec::new(),
            });
            *cur = 0;
        }
        let take = len.min(cap - *cur);
        let blk = plan.blocks.last_mut().expect("block ensured above");
        blk.gathers.push(GatherStep {
            op,
            addr,
            gap,
            len: take,
            kernel,
        });
        blk.elements += take;
        *cur += take;
        addr += gap * take;
        len -= take;
    }
}

/// The receiver-side twin of [`push_send_run`]: same cap, same run
/// sequence, therefore the same split points — each block's scatter
/// offsets restart at zero because each block is its own payload.
fn push_recv_run<T: PackValue>(
    plan: &mut RecvPlan<T>,
    cur: &mut usize,
    cap: usize,
    op: usize,
    mut addr: usize,
    gap: usize,
    mut len: usize,
    kernel: ScatterFn<T>,
) {
    while len > 0 {
        if plan.blocks.is_empty() || *cur == cap {
            plan.blocks.push(Vec::new());
            *cur = 0;
        }
        let take = len.min(cap - *cur);
        plan.blocks
            .last_mut()
            .expect("block ensured above")
            .push(ScatterStep {
                op,
                addr,
                gap,
                len: take,
                off: *cur,
                kernel,
            });
        *cur += take;
        addr += gap * take;
        len -= take;
    }
}

/// Clips an affine address walk `base + j * gap, j in 0..len` to the
/// half-open range `[lo, hi)`: returns the first index and the clipped
/// length, or `None` when the walk misses the range.
fn clip_walk(base: usize, gap: usize, len: usize, lo: usize, hi: usize) -> Option<(usize, usize)> {
    if len == 0 || base >= hi {
        return None;
    }
    let gap = gap.max(1);
    let j0 = if base >= lo {
        0
    } else {
        (lo - base).div_ceil(gap)
    };
    if j0 >= len || base + j0 * gap >= hi {
        return None;
    }
    let j1 = ((hi - 1 - base) / gap).min(len - 1);
    Some((j0, j1 - j0 + 1))
}

/// Builds the L2-blocked ranges of a communication-free node program:
/// partitions the touched local address space into ≤`block`-element
/// ranges and clips every same-node move (by destination) and apply
/// segment to its range, rebasing staging-side addresses by `-lo`.
fn local_blocks_for<T: PackValue>(prog: &NodeProgram<T>, block: usize) -> Vec<LocalBlock<T>> {
    let mut extent = 0usize;
    for step in &prog.apply {
        extent = extent.max(step.addr + (step.len - 1) * step.gap + 1);
    }
    for mv in prog.self_moves.iter().flatten() {
        extent = extent.max(mv.dst + (mv.len - 1) * mv.dgap + 1);
    }
    if extent <= block {
        return Vec::new();
    }
    let mut blocks = Vec::with_capacity(extent.div_ceil(block));
    let mut lo = 0usize;
    while lo < extent {
        let hi = (lo + block).min(extent);
        let moves = prog
            .self_moves
            .iter()
            .map(|op_moves| {
                op_moves
                    .iter()
                    .filter_map(|mv| {
                        clip_walk(mv.dst, mv.dgap, mv.len, lo, hi).map(|(j0, len)| MoveStep {
                            dst: mv.dst + j0 * mv.dgap - lo,
                            dgap: mv.dgap,
                            src: mv.src + j0 * mv.sgap,
                            sgap: mv.sgap,
                            len,
                            kernel: mv.kernel,
                        })
                    })
                    .collect()
            })
            .collect();
        let apply = prog
            .apply
            .iter()
            .filter_map(|step| {
                clip_walk(step.addr, step.gap, step.len, lo, hi).map(|(j0, len)| ApplyStep {
                    addr: step.addr + j0 * step.gap - lo,
                    gap: step.gap,
                    len,
                    kernel: step.kernel,
                })
            })
            .collect();
        blocks.push(LocalBlock {
            lo,
            hi,
            moves,
            apply,
        });
        lo = hi;
    }
    blocks
}

/// Compiles the statement shape `A(sec_a) = f(ops…)` on a `(p, k_a)` LHS
/// layout into per-node fused epochs. `ops` lists each operand's
/// `(k, section)`; planning artifacts (node plans, per-operand comm
/// schedules) come from — and warm — the process-wide cache, so the
/// locality analytics recorded at plan build time stay live under the
/// fused path. `block` caps physical message payloads and local epoch
/// ranges at that many elements (`0` = unblocked); callers derive it
/// from [`epoch_block_elems`].
pub fn compile<T: PackValue>(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    ops: &[(i64, RegularSection)],
    mode: ExecMode,
    kind: TransportKind,
    block: usize,
) -> Result<FusedStatement<T>> {
    let _sp = bcag_trace::span("fuse.compile");
    let _t = bcag_trace::timed_span("fuse_compile_ns");
    let plans = cache::plans(p, k_a, sec_a, Method::Lattice)?;
    let mut schedules = Vec::with_capacity(ops.len());
    for (k_b, sec_b) in ops {
        schedules.push(cache::schedule(
            p,
            k_a,
            sec_a,
            *k_b,
            sec_b,
            Method::Lattice,
            mode,
            kind,
        )?);
    }
    let pu = p as usize;
    let eb = std::mem::size_of::<T>();
    // Message payload cap in elements; shared by both sides of every
    // pair, so split points agree.
    let cap = if block == 0 { usize::MAX } else { block };
    let mut blocked = false;
    let mut nodes = Vec::with_capacity(pu);
    for me in 0..pu {
        let mut prog: NodeProgram<T> = NodeProgram {
            self_moves: Vec::with_capacity(ops.len()),
            sends: Vec::new(),
            recvs: Vec::new(),
            apply: Vec::new(),
            local_blocks: Vec::new(),
            moved: 0,
            msgs: 0,
            nonlocal: 0,
            seg_count: 0,
            seg_elems: 0,
        };
        // Per-peer accumulators: logical (operand, peer) messages merge
        // into one physical message per peer per block, packed — and
        // unpacked — in operand order, then compiled run order, so
        // sender and receiver derive the same payload layout
        // independently.
        let mut send_acc: Vec<SendPlan<T>> = (0..pu)
            .map(|dst| SendPlan {
                dst,
                charges: Vec::new(),
                blocks: Vec::new(),
            })
            .collect();
        let mut send_cur = vec![0usize; pu];
        let mut recv_acc: Vec<RecvPlan<T>> = (0..pu)
            .map(|src| RecvPlan {
                src,
                charges: Vec::new(),
                blocks: Vec::new(),
            })
            .collect();
        let mut recv_cur = vec![0usize; pu];
        // Per-peer payload caps: the global cap widened so no pair ever
        // splits into more than [`MAX_BLOCKS_PER_PEER`] envelopes. The
        // epoch protocol sends every block before receiving any, so on
        // the shm fabric's fixed-capacity SPSC rings an unbounded block
        // count could leave two peers spinning on mutually full rings;
        // keeping the per-pair envelope count under the ring capacity
        // means a send can never block, whatever the transfer size.
        // Sender and receiver widen from the same pair totals, so the
        // split points still agree.
        let mut send_cap = vec![cap; pu];
        let mut recv_cap = vec![cap; pu];
        if block > 0 {
            for peer in 0..pu {
                if peer == me {
                    continue;
                }
                let out: usize = schedules.iter().map(|s| s.pair(me, peer).len()).sum();
                send_cap[peer] = cap.max(out.div_ceil(MAX_BLOCKS_PER_PEER));
                let inn: usize = schedules.iter().map(|s| s.pair(peer, me).len()).sum();
                recv_cap[peer] = cap.max(inn.div_ceil(MAX_BLOCKS_PER_PEER));
            }
        }
        for (op, sched) in schedules.iter().enumerate() {
            let mut op_moves = Vec::new();
            for dst in 0..pu {
                let transfers = sched.pair(me, dst);
                prog.moved += transfers.len() as u64;
                let runs = sched.pair_runs(me, dst);
                for r in runs {
                    if r.len >= 2 {
                        prog.seg_count += 1;
                        prog.seg_elems += r.len as u64;
                    }
                }
                if dst == me {
                    for r in runs {
                        op_moves.push(MoveStep {
                            dst: r.dst_local as usize,
                            dgap: r.dgap as usize,
                            src: r.src_local as usize,
                            sgap: r.sgap as usize,
                            len: r.len as usize,
                            kernel: move_kernel::<T>(
                                ShapeClass::of_gap_for(r.sgap, eb),
                                ShapeClass::of_gap_for(r.dgap, eb),
                            ),
                        });
                    }
                    continue;
                }
                if transfers.is_empty() {
                    continue;
                }
                prog.msgs += 1;
                prog.nonlocal += transfers.len() as u64;
                let acc = &mut send_acc[dst];
                acc.charges
                    .push(wire::wire_size::<T>(runs.len(), transfers.len()) as u64);
                for r in runs {
                    push_send_run(
                        acc,
                        &mut send_cur[dst],
                        send_cap[dst],
                        op,
                        r.src_local as usize,
                        r.sgap as usize,
                        r.len as usize,
                        gather_kernel::<T>(ShapeClass::of_gap_for(r.sgap, eb)),
                    );
                }
            }
            prog.self_moves.push(op_moves);
            for src in 0..pu {
                let transfers = sched.pair(src, me);
                if src == me || transfers.is_empty() {
                    continue;
                }
                let runs = sched.pair_runs(src, me);
                let acc = &mut recv_acc[src];
                acc.charges
                    .push(wire::wire_size::<T>(runs.len(), transfers.len()) as u64);
                for r in runs {
                    push_recv_run(
                        acc,
                        &mut recv_cur[src],
                        recv_cap[src],
                        op,
                        r.dst_local as usize,
                        r.dgap as usize,
                        r.len as usize,
                        scatter_kernel::<T>(ShapeClass::of_gap_for(r.dgap, eb)),
                    );
                }
            }
        }
        prog.sends = send_acc
            .into_iter()
            .filter(|s| !s.charges.is_empty())
            .collect();
        prog.recvs = recv_acc
            .into_iter()
            .filter(|r| !r.charges.is_empty())
            .collect();
        if plans[me].start.is_some() {
            for seg in lower_plan(&plans[me].runs) {
                prog.apply.push(ApplyStep {
                    addr: seg.addr as usize,
                    gap: seg.gap as usize,
                    len: seg.len as usize,
                    kernel: apply_kernel::<T>(ShapeClass::of_gap_for(seg.gap, eb)),
                });
            }
        }
        if block > 0 && prog.sends.is_empty() && prog.recvs.is_empty() {
            prog.local_blocks = local_blocks_for(&prog, block);
        }
        blocked |= !prog.local_blocks.is_empty() || prog.sends.iter().any(|s| s.blocks.len() > 1);
        nodes.push(prog);
    }
    Ok(FusedStatement { p, nodes, blocked })
}

/// [`compile`] through the sharded plan cache: the program is built once
/// per (statement shape × element type × execution context × block size)
/// and shared.
pub fn cached_program<T: PackValue>(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    ops: &[(i64, RegularSection)],
    mode: ExecMode,
    kind: TransportKind,
    block: usize,
) -> Result<Arc<FusedStatement<T>>> {
    cache::fused::<FusedStatement<T>>(p, k_a, sec_a, ops, mode, kind, block, || {
        compile::<T>(p, k_a, sec_a, ops, mode, kind, block).map(Arc::new)
    })
}

/// Executes `A(sec_a) = f(operand values…)` through the fused plan
/// compiler on the process-default launch mode and transport — the fused
/// twin of [`crate::statement::assign_expr`], which routes here when
/// [`default_fused`] is [`FusedMode::On`]. Callers must have validated
/// the statement (ascending LHS section, conforming operands on one
/// machine) as `assign_expr` does.
pub fn assign_fused<T, F>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    operands: &[(&DistArray<T>, RegularSection)],
    f: F,
) -> Result<()>
where
    T: PackValue,
    F: Fn(&[T]) -> T + Sync,
{
    assign_fused_on(
        a,
        sec_a,
        operands,
        f,
        pool::default_launch(),
        transport::active_transport(),
    )
}

/// [`assign_fused`] with an explicit launch mode and transport — the A/B
/// entry point of the differential suite.
pub fn assign_fused_on<T, F>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    operands: &[(&DistArray<T>, RegularSection)],
    f: F,
    launch: LaunchMode,
    kind: TransportKind,
) -> Result<()>
where
    T: PackValue,
    F: Fn(&[T]) -> T + Sync,
{
    if transport::proc::active().is_some() {
        // The multi-process executor shadow-applies pairs across its
        // replicated image; a fused epoch has no equivalent protocol.
        // `assign_expr` routes proc sessions to the interpreted path.
        return Err(BcagError::Precondition(
            "fused epochs do not run inside a multi-process session",
        ));
    }
    let ops: Vec<(i64, RegularSection)> = operands.iter().map(|(b, s)| (b.k(), *s)).collect();
    let block = epoch_block_elems::<T>(sec_a);
    let program = cached_program::<T>(a.p(), a.k(), sec_a, &ops, ExecMode::Batched, kind, block)?;
    let arrays: Vec<&DistArray<T>> = operands.iter().map(|(b, _)| *b).collect();
    program.execute(a, &arrays, f, launch, kind);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_and_flip() {
        assert_eq!(FusedMode::On.name(), "fused");
        assert_eq!(FusedMode::Off.name(), "interp");
        let before = default_fused();
        set_default_fused(FusedMode::Off);
        assert_eq!(default_fused(), FusedMode::Off);
        set_default_fused(before);
        assert_eq!(default_fused(), before);
    }

    #[test]
    fn kernels_match_their_generic_forms() {
        let src: Vec<i64> = (0..64).collect();
        for gap in [1usize, 2, 3, 4, 7] {
            let kernel = gather_kernel::<i64>(ShapeClass::of_gap(gap as i64));
            let mut got = Vec::new();
            kernel(&mut got, &src, 3, gap, 5);
            let mut want = Vec::new();
            i64::extend_run(&mut want, &src, 3, gap, 5);
            assert_eq!(got, want, "gather gap={gap}");

            let scatter = scatter_kernel::<i64>(ShapeClass::of_gap(gap as i64));
            let mut got_dst = vec![0i64; 64];
            scatter(&mut got_dst, 2, gap, &want);
            let mut want_dst = vec![0i64; 64];
            i64::write_run(&mut want_dst, 2, gap, &want);
            assert_eq!(got_dst, want_dst, "scatter gap={gap}");
        }
    }

    #[test]
    fn move_kernels_cover_the_gap_grid() {
        let src: Vec<i64> = (100..200).collect();
        for sgap in [1i64, 2, 3, 4, 6] {
            for dgap in [1i64, 2, 3, 4, 9] {
                let kernel = move_kernel::<i64>(ShapeClass::of_gap(sgap), ShapeClass::of_gap(dgap));
                let mut got = vec![0i64; 100];
                kernel(&mut got, &src, 1, dgap as usize, 2, sgap as usize, 7);
                let mut want = vec![0i64; 100];
                for j in 0..7usize {
                    want[1 + j * dgap as usize] = src[2 + j * sgap as usize];
                }
                assert_eq!(got, want, "sgap={sgap} dgap={dgap}");
            }
        }
    }

    #[test]
    fn fused_statement_matches_interpreted_triad() {
        let n = 400i64;
        let alpha = 3.0f64;
        let bg: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cg: Vec<f64> = (0..n).map(|i| (i * i % 97) as f64).collect();
        let b = DistArray::from_global(4, 5, &bg).unwrap();
        let c = DistArray::from_global(4, 16, &cg).unwrap();
        let sec_a = RegularSection::new(0, 357, 3).unwrap();
        let sec_b = RegularSection::new(2, 240, 2).unwrap();
        let sec_c = RegularSection::new(10, 129, 1).unwrap();

        let mut fused = DistArray::new(4, 8, n, 0.0f64).unwrap();
        assign_fused(&mut fused, &sec_a, &[(&b, sec_b), (&c, sec_c)], |args| {
            args[0] * alpha + args[1]
        })
        .unwrap();

        let got = fused.to_global();
        for t in 0..120i64 {
            let ia = (3 * t) as usize;
            let ib = (2 + 2 * t) as usize;
            let ic = (10 + t) as usize;
            assert_eq!(got[ia], bg[ib] * alpha + cg[ic], "t={t}");
        }
        assert_eq!(got[1], 0.0);
        assert_eq!(got[2], 0.0);
    }

    #[test]
    fn compiled_programs_are_cached_and_shared() {
        // A shape unlike anything else in the suite, so the first call
        // is a genuine build.
        let sec_a = RegularSection::new(1, 1171, 26).unwrap();
        let sec_b = RegularSection::new(3, 1173, 26).unwrap();
        let ops = vec![(9i64, sec_b)];
        let first = cached_program::<i64>(
            3,
            11,
            &sec_a,
            &ops,
            ExecMode::Batched,
            TransportKind::Mpsc,
            0,
        )
        .unwrap();
        let second = cached_program::<i64>(
            3,
            11,
            &sec_a,
            &ops,
            ExecMode::Batched,
            TransportKind::Mpsc,
            0,
        )
        .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // A different element type is a distinct cache entry.
        let other = cached_program::<f64>(
            3,
            11,
            &sec_a,
            &ops,
            ExecMode::Batched,
            TransportKind::Mpsc,
            0,
        )
        .unwrap();
        assert!(other.census() == first.census());
        // A different block size is a distinct cache entry too: tune
        // A/B flips must never reuse the other regime's programs.
        let chunked = cached_program::<i64>(
            3,
            11,
            &sec_a,
            &ops,
            ExecMode::Batched,
            TransportKind::Mpsc,
            7,
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&first, &chunked));
    }

    #[test]
    fn census_counts_structure() {
        let sec = RegularSection::new(0, 239, 1).unwrap();
        let prog = compile::<i64>(
            4,
            8,
            &sec,
            &[(3, sec)],
            ExecMode::Batched,
            TransportKind::Mpsc,
            0,
        )
        .unwrap();
        let census = prog.census();
        assert!(census.sends > 0, "redistribution must send messages");
        assert_eq!(census.sends, census.recvs, "every send has a receiver");
        assert!(census.apply_segments >= 4, "every node owns LHS elements");
        assert!(
            census.send_blocks > 0,
            "unblocked sends still count one block each"
        );
        assert_eq!(
            census.local_blocks, 0,
            "unblocked programs compile no local ranges"
        );
    }

    #[test]
    fn blocked_messages_match_unblocked() {
        // k mismatch forces redistribution; tiny block caps split every
        // physical message into many chunks, which must stay bit-exact.
        let n = 600i64;
        let bg: Vec<i64> = (0..n).map(|i| 7 * i - 3).collect();
        let b = DistArray::from_global(3, 4, &bg).unwrap();
        let sec_a = RegularSection::new(0, 597, 3).unwrap();
        let sec_b = RegularSection::new(1, 399, 2).unwrap();
        let ops = vec![(b.k(), sec_b)];
        let run = |block: usize| {
            let prog = compile::<i64>(
                3,
                7,
                &sec_a,
                &ops,
                ExecMode::Batched,
                TransportKind::Mpsc,
                block,
            )
            .unwrap();
            let mut a = DistArray::new(3, 7, n, 0i64).unwrap();
            prog.execute(
                &mut a,
                &[&b],
                |v| v[0] * 2 + 1,
                pool::default_launch(),
                TransportKind::Mpsc,
            );
            (prog.census(), a.to_global())
        };
        let (base_census, want) = run(0);
        for block in [1usize, 5, 64] {
            let (census, got) = run(block);
            assert_eq!(got, want, "block={block}");
            assert_eq!(
                census.sends, base_census.sends,
                "logical messages are cap-independent"
            );
            if block < 64 {
                assert!(
                    census.send_blocks > base_census.send_blocks,
                    "small caps must chunk messages (block={block})"
                );
            }
        }
    }

    #[test]
    fn blocked_sends_are_ring_safe() {
        // A pair transfer far larger than the shm ring capacity at
        // block=1: the per-pair clamp must widen blocks so the whole
        // send phase fits in the ring — without it, two peers both
        // stuck in their send phase on mutually full rings would
        // deadlock before either reached its receive loop.
        let n = 4000i64;
        let bg: Vec<i64> = (0..n).collect();
        let b = DistArray::from_global(2, 4, &bg).unwrap();
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let ops = vec![(b.k(), sec)];
        let prog =
            compile::<i64>(2, 16, &sec, &ops, ExecMode::Batched, TransportKind::Shm, 1).unwrap();
        for node in &prog.nodes {
            for send in &node.sends {
                assert!(send.blocks.len() > 1, "the transfer must still chunk");
                assert!(
                    send.blocks.len() <= MAX_BLOCKS_PER_PEER,
                    "per-pair envelope count must stay under the ring capacity, got {}",
                    send.blocks.len()
                );
            }
        }
        let mut a = DistArray::new(2, 16, n, 0i64).unwrap();
        prog.execute(
            &mut a,
            &[&b],
            |v| v[0] + 1,
            pool::default_launch(),
            TransportKind::Shm,
        );
        let got = a.to_global();
        for i in 0..n as usize {
            assert_eq!(got[i], i as i64 + 1, "i={i}");
        }
    }

    #[test]
    fn blocked_local_epochs_match_unblocked() {
        // Same layout on both sides: every transfer is a self-move, so
        // blocking takes the local-epoch range path.
        let n = 1200i64;
        let bg: Vec<f64> = (0..n).map(|i| (i * 13 % 101) as f64).collect();
        let b = DistArray::from_global(2, 8, &bg).unwrap();
        let sec = RegularSection::new(2, 1195, 3).unwrap();
        let ops = vec![(8i64, sec)];
        let run = |block: usize| {
            let prog = compile::<f64>(
                2,
                8,
                &sec,
                &ops,
                ExecMode::Batched,
                TransportKind::Mpsc,
                block,
            )
            .unwrap();
            let mut a = DistArray::new(2, 8, n, -1.0f64).unwrap();
            prog.execute(
                &mut a,
                &[&b],
                |v| v[0] * 0.5,
                pool::default_launch(),
                TransportKind::Mpsc,
            );
            (prog.census(), a.to_global())
        };
        let (base_census, want) = run(0);
        assert_eq!(base_census.sends, 0, "same-layout copy never communicates");
        for block in [16usize, 100, 4096] {
            let (census, got) = run(block);
            assert_eq!(got, want, "block={block}");
            if block < 512 {
                assert!(
                    census.local_blocks > 1,
                    "small caps must split the local epoch (block={block})"
                );
            }
        }
        // Zero-operand fills block too.
        let fill = |block: usize| {
            let prog = compile::<f64>(
                2,
                8,
                &sec,
                &[],
                ExecMode::Batched,
                TransportKind::Mpsc,
                block,
            )
            .unwrap();
            let mut a = DistArray::new(2, 8, n, 0.0f64).unwrap();
            prog.execute(
                &mut a,
                &[],
                |_| 9.0,
                pool::default_launch(),
                TransportKind::Mpsc,
            );
            a.to_global()
        };
        assert_eq!(fill(0), fill(32));
    }

    #[test]
    fn zero_operand_fused_fill() {
        let mut a = DistArray::new(2, 4, 50, 0i64).unwrap();
        let sec = RegularSection::new(1, 49, 4).unwrap();
        assign_fused(&mut a, &sec, &[], |_| 9).unwrap();
        let g = a.to_global();
        for i in 0..50i64 {
            assert_eq!(g[i as usize], if sec.contains(i) { 9 } else { 0 });
        }
    }
}
