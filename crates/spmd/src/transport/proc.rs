//! Multi-process SPMD session: the child side of `bcag spmd --procs p`.
//!
//! The launcher (in `bcag-rt`) forks `p` OS processes, each running the
//! same script as one node, and routes frames between them in a star
//! topology: every child's stdout is read by a parent router thread,
//! which forwards DATA frames to the destination child's stdin. A child
//! process installs a process-global [`Session`] here; the executors and
//! the interpreter detect it and exchange the serialized run-encoded
//! wire format (`comm::wire`) over it instead of in-memory envelopes —
//! real process isolation, real bytes.
//!
//! Framing (all integers little-endian):
//!
//! ```text
//! [kind: u8] [src: u32] [dst: u32] [len: u32] [body: len bytes]
//! ```
//!
//! `DATA` frames carry node-to-node payloads (wire-encoded messages,
//! gather/broadcast bodies, barrier tokens); `PRINT` ships an output
//! line to the launcher; `TRACE` ships a node's serialized trace
//! (`bcag-trace-full/v1`) for lane merging; `DONE` marks orderly
//! completion; `POISON` is broadcast by the router when a peer process
//! dies, releasing nodes blocked in [`Session::recv_from`].
//!
//! There is no cross-process epoch barrier, so a fast node's frames for
//! statement N+1 can arrive while a slow node still drains statement N.
//! Delivery is FIFO per (src, dst) — the router forwards each source's
//! frames in order — so [`Session::recv_from`] demultiplexes *by
//! source*: frames from other sources are parked in per-source queues
//! instead of being consumed out of turn. Receiving "from src" is
//! therefore deterministic even without global ordering.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Mutex, OnceLock};

use crate::pool::lock_clean;

/// Node-to-node payload, routed parent-side to `dst`'s stdin.
pub const KIND_DATA: u8 = 0;
/// An output line for the launcher to emit (sent by node 0).
pub const KIND_PRINT: u8 = 1;
/// A node's serialized `bcag-trace-full/v1` document.
pub const KIND_TRACE: u8 = 2;
/// Orderly end of a node's run.
pub const KIND_DONE: u8 = 3;
/// Broadcast by the router when a peer process died.
pub const KIND_POISON: u8 = 4;

/// One framed message on a child's stdio pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// One of the `KIND_*` constants.
    pub kind: u8,
    /// Originating node.
    pub src: u32,
    /// Destination node (meaningful for `DATA`; 0 otherwise).
    pub dst: u32,
    /// Payload bytes.
    pub body: Vec<u8>,
}

/// Writes one frame and flushes (frames are the unit of progress; a
/// buffered half-frame would deadlock the star).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let mut header = [0u8; 13];
    header[0] = frame.kind;
    header[1..5].copy_from_slice(&frame.src.to_le_bytes());
    header[5..9].copy_from_slice(&frame.dst.to_le_bytes());
    header[9..13].copy_from_slice(&(frame.body.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.body)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; 13];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes")) as usize;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(Frame {
        kind: header[0],
        src: u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")),
        dst: u32::from_le_bytes(header[5..9].try_into().expect("4 bytes")),
        body,
    }))
}

/// A child process's connection to the launcher's star router.
pub struct Session {
    me: usize,
    p: usize,
    io: Mutex<SessionIo>,
}

struct SessionIo {
    writer: Box<dyn Write + Send>,
    reader: Box<dyn Read + Send>,
    /// DATA bodies received ahead of order, parked per source.
    pending: Vec<VecDeque<Vec<u8>>>,
}

static SESSION: OnceLock<Arc<Session>> = OnceLock::new();

/// Installs the process-global session for node `me` of `p`, speaking
/// frames over the given pipe ends (stdin/stdout in a real child;
/// in-memory pipes in tests). Panics if a session is already installed —
/// a child process is one node for its whole lifetime.
pub fn install(
    me: usize,
    p: usize,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
) -> Arc<Session> {
    let session = Arc::new(Session {
        me,
        p,
        io: Mutex::new(SessionIo {
            writer,
            reader,
            pending: (0..p).map(|_| VecDeque::new()).collect(),
        }),
    });
    SESSION
        .set(Arc::clone(&session))
        .unwrap_or_else(|_| panic!("spmd session already installed"));
    session
}

/// The installed session, if this process is an `spmd-node` child.
pub fn active() -> Option<Arc<Session>> {
    SESSION.get().cloned()
}

impl Session {
    /// This node's index in `0..p`.
    pub fn me(&self) -> usize {
        self.me
    }

    /// The machine size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Ships a DATA payload to node `dst`.
    pub fn send_data(&self, dst: usize, body: Vec<u8>) {
        assert_ne!(dst, self.me, "self-transfers are applied locally");
        self.write(Frame {
            kind: KIND_DATA,
            src: self.me as u32,
            dst: dst as u32,
            body,
        });
    }

    /// Blocks for the next DATA payload *from `src`*, parking frames
    /// from other sources in their per-source queues. Panics on POISON
    /// (a peer process died) so counted receive loops fail fast.
    pub fn recv_from(&self, src: usize) -> Vec<u8> {
        let mut io = lock_clean(&self.io);
        if let Some(body) = io.pending[src].pop_front() {
            return body;
        }
        loop {
            let frame = match read_frame(&mut io.reader) {
                Ok(Some(frame)) => frame,
                Ok(None) => panic!("spmd node {}: launcher closed the pipe", self.me),
                Err(e) => panic!("spmd node {}: pipe error: {e}", self.me),
            };
            match frame.kind {
                KIND_DATA if frame.src as usize == src => return frame.body,
                KIND_DATA => io.pending[frame.src as usize].push_back(frame.body),
                KIND_POISON => {
                    panic!("spmd node {}: peer node process failed", self.me)
                }
                kind => panic!(
                    "spmd node {}: unexpected frame kind {kind} inbound",
                    self.me
                ),
            }
        }
    }

    /// Ships an output line to the launcher (the interpreter funnels all
    /// user-visible output through node 0).
    pub fn send_print(&self, line: &str) {
        self.write(Frame {
            kind: KIND_PRINT,
            src: self.me as u32,
            dst: 0,
            body: line.as_bytes().to_vec(),
        });
    }

    /// Ships this node's serialized trace document to the launcher.
    pub fn send_trace(&self, json: &str) {
        self.write(Frame {
            kind: KIND_TRACE,
            src: self.me as u32,
            dst: 0,
            body: json.as_bytes().to_vec(),
        });
    }

    /// Marks orderly completion.
    pub fn send_done(&self) {
        self.write(Frame {
            kind: KIND_DONE,
            src: self.me as u32,
            dst: 0,
            body: Vec::new(),
        });
    }

    /// Full barrier over all `p` node processes: everyone reports to
    /// node 0, node 0 releases everyone. Built on DATA frames, so the
    /// per-source FIFO discipline orders it against surrounding
    /// statements.
    pub fn barrier(&self) {
        if self.me == 0 {
            for src in 1..self.p {
                let body = self.recv_from(src);
                debug_assert_eq!(body, [KIND_DATA], "barrier arrive token");
            }
            for dst in 1..self.p {
                self.send_data(dst, vec![KIND_DATA]);
            }
        } else {
            self.send_data(0, vec![KIND_DATA]);
            let body = self.recv_from(0);
            debug_assert_eq!(body, [KIND_DATA], "barrier release token");
        }
    }

    fn write(&self, frame: Frame) {
        let mut io = lock_clean(&self.io);
        write_frame(&mut io.writer, &frame)
            .unwrap_or_else(|e| panic!("spmd node {}: pipe error: {e}", self.me));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let frames = [
            Frame {
                kind: KIND_DATA,
                src: 3,
                dst: 1,
                body: vec![1, 2, 3, 4, 5],
            },
            Frame {
                kind: KIND_PRINT,
                src: 0,
                dst: 0,
                body: b"SUM A = 42".to_vec(),
            },
            Frame {
                kind: KIND_DONE,
                src: 2,
                dst: 0,
                body: vec![],
            },
        ];
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame {
                kind: KIND_DATA,
                src: 0,
                dst: 1,
                body: vec![9; 10],
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn recv_from_demuxes_by_source() {
        // Simulate the router's inbound stream: frames from src 2 arrive
        // before the frame from src 1 that the node asks for first.
        let mut inbound = Vec::new();
        for (src, body) in [(2u32, vec![20u8]), (2, vec![21]), (1, vec![10])] {
            write_frame(
                &mut inbound,
                &Frame {
                    kind: KIND_DATA,
                    src,
                    dst: 0,
                    body,
                },
            )
            .unwrap();
        }
        let session = Session {
            me: 0,
            p: 3,
            io: Mutex::new(SessionIo {
                writer: Box::new(Vec::new()),
                reader: Box::new(std::io::Cursor::new(inbound)),
                pending: (0..3).map(|_| VecDeque::new()).collect(),
            }),
        };
        assert_eq!(session.recv_from(1), vec![10]);
        assert_eq!(session.recv_from(2), vec![20]);
        assert_eq!(session.recv_from(2), vec![21]);
    }
}
