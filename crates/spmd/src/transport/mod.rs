//! Pluggable transport fabric for the SPMD machine.
//!
//! The paper's node programs exchange run-encoded messages ([`crate::RunSpan`]
//! headers plus a typed payload); *how* those messages travel is a
//! machine property, not an algorithm property. This module extracts
//! that axis behind the [`Endpoint`] trait — per-node send/recv of
//! type-erased [`Envelope`]s, plus poison and barrier signalling layered
//! on top by [`crate::pool::NodeCtx`] — so the same executors run over
//! three backends:
//!
//! * [`TransportKind::Mpsc`] — the reference fabric: one `std::sync::mpsc`
//!   inbox per node. Simple, obviously correct, and the baseline every
//!   other backend is differentially tested against.
//! * [`TransportKind::Shm`] — a lock-free shared-memory fabric: `p × p`
//!   fixed-capacity SPSC ring buffers with acquire/release indices and
//!   busy-wait-then-park receivers (see [`ring`]). The slot discipline is
//!   `memmap`-ready: nothing in the protocol assumes a shared heap beyond
//!   the ring storage itself.
//! * [`TransportKind::Proc`] — the shm fabric with *serialized* payloads:
//!   executors encode the run-encoded wire format (`comm::wire`) into
//!   byte frames instead of moving boxed buffers, exercising exactly the
//!   bytes that `bcag spmd --procs p` ships between real OS processes
//!   (see [`proc`] for the multi-process session itself).
//!
//! Selection: [`crate::Machine::with_transport`] per machine, or the
//! process-wide default from the `BCAG_TRANSPORT={mpsc,shm,proc}` env
//! var for A/B runs.

pub mod proc;
pub mod ring;

use std::any::Any;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A type-erased fabric message. Batched execution ships whole
/// run-encoded buffers as one envelope per (src, dst) pair.
pub type Envelope = Box<dyn Any + Send>;

/// Marker envelope broadcast by a panicking node job so peers blocked in
/// [`crate::pool::NodeCtx::recv`] fail fast instead of hanging.
pub(crate) struct Poison;

/// Barrier arrival token (node `m` → node 0). See
/// [`crate::pool::NodeCtx::barrier`].
pub(crate) struct BarrierArrive;

/// Barrier release token (node 0 → everyone).
pub(crate) struct BarrierRelease;

/// Which fabric a machine's node contexts exchange envelopes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Reference fabric: one `std::sync::mpsc` inbox per node.
    Mpsc,
    /// Lock-free shared-memory SPSC ring buffers.
    Shm,
    /// Ring buffers carrying the serialized wire format — the in-process
    /// twin of the `bcag spmd` multi-process launcher.
    Proc,
}

impl TransportKind {
    /// Stable lowercase name, used in bench labels, trace tags and the
    /// `BCAG_TRANSPORT` env var.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Mpsc => "mpsc",
            TransportKind::Shm => "shm",
            TransportKind::Proc => "proc",
        }
    }

    /// Parses a `BCAG_TRANSPORT` value.
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "mpsc" => Some(TransportKind::Mpsc),
            "shm" => Some(TransportKind::Shm),
            "proc" => Some(TransportKind::Proc),
            _ => None,
        }
    }

    /// Whether executors should ship the serialized wire format instead
    /// of boxed in-memory buffers on this fabric.
    pub fn serializes(&self) -> bool {
        matches!(self, TransportKind::Proc)
    }

    /// All selectable kinds (test matrices iterate this).
    pub const ALL: [TransportKind; 3] =
        [TransportKind::Mpsc, TransportKind::Shm, TransportKind::Proc];
}

/// Process-default transport: 0 = unset, else `TransportKind as u8 + 1`.
static DEFAULT_TRANSPORT: AtomicU8 = AtomicU8::new(0);

/// The process-wide default [`TransportKind`], used by
/// [`crate::Machine::new`] and `CommSchedule::execute_with`. Initialized
/// lazily from the `BCAG_TRANSPORT` env var (`mpsc`, `shm` or `proc`;
/// unset or unrecognized selects `mpsc`, the reference fabric).
pub fn default_transport() -> TransportKind {
    match DEFAULT_TRANSPORT.load(Ordering::Relaxed) {
        1 => TransportKind::Mpsc,
        2 => TransportKind::Shm,
        3 => TransportKind::Proc,
        _ => {
            let kind = std::env::var("BCAG_TRANSPORT")
                .ok()
                .as_deref()
                .and_then(TransportKind::parse)
                .unwrap_or(TransportKind::Mpsc);
            set_default_transport(kind);
            kind
        }
    }
}

/// Overrides the process-wide default [`TransportKind`] (benchmarks use
/// this to A/B fabrics within one process).
pub fn set_default_transport(kind: TransportKind) {
    let v = match kind {
        TransportKind::Mpsc => 1,
        TransportKind::Shm => 2,
        TransportKind::Proc => 3,
    };
    DEFAULT_TRANSPORT.store(v, Ordering::Relaxed);
}

/// The transport communication will actually run over right now: inside
/// a `bcag spmd` node process the multi-process session overrides every
/// selection, otherwise the process default applies. Callers keying
/// cached plans on the execution context use this, so the key matches
/// what the executors will really do.
pub fn active_transport() -> TransportKind {
    if proc::active().is_some() {
        TransportKind::Proc
    } else {
        default_transport()
    }
}

/// One node's handle on a fabric: point-to-point envelope exchange with
/// every peer of a `p`-node machine. Poison and barrier signalling are
/// layered on top by [`crate::pool::NodeCtx`] in terms of these
/// primitives, so every backend inherits them.
pub trait Endpoint: Send {
    /// This endpoint's node index in `0..p`.
    fn node(&self) -> usize;

    /// The machine size `p`.
    fn p(&self) -> usize;

    /// Delivers an envelope to node `dst`, blocking while the fabric is
    /// at capacity (ring backends; mpsc is unbounded).
    fn send(&mut self, dst: usize, env: Envelope);

    /// Best-effort non-blocking send used for teardown signalling
    /// (poison broadcast): returns `false` if the fabric would block or
    /// the peer is gone, rather than waiting.
    fn offer(&mut self, dst: usize, env: Envelope) -> bool;

    /// Blocks for the next envelope from any peer.
    fn recv(&mut self) -> Envelope;

    /// Returns a queued envelope if one is immediately available.
    fn try_recv(&mut self) -> Option<Envelope>;
}

/// Builds the `p` connected endpoints of a fabric, one per node.
pub(crate) fn connect(kind: TransportKind, p: usize) -> Vec<Box<dyn Endpoint>> {
    match kind {
        TransportKind::Mpsc => mpsc_fabric(p),
        TransportKind::Shm | TransportKind::Proc => ring::fabric(p),
    }
}

/// The reference fabric: one unbounded mpsc inbox per node plus a shared
/// vector of senders.
struct MpscEndpoint {
    m: usize,
    inbox: Receiver<Envelope>,
    peers: Arc<Vec<Sender<Envelope>>>,
}

fn mpsc_fabric(p: usize) -> Vec<Box<dyn Endpoint>> {
    let (senders, inboxes): (Vec<_>, Vec<_>) = (0..p).map(|_| channel::<Envelope>()).unzip();
    let peers = Arc::new(senders);
    inboxes
        .into_iter()
        .enumerate()
        .map(|(m, inbox)| {
            Box::new(MpscEndpoint {
                m,
                inbox,
                peers: Arc::clone(&peers),
            }) as Box<dyn Endpoint>
        })
        .collect()
}

impl Endpoint for MpscEndpoint {
    fn node(&self) -> usize {
        self.m
    }

    fn p(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, dst: usize, env: Envelope) {
        self.peers[dst]
            .send(env)
            .expect("fabric receivers live for the pool lifetime");
    }

    fn offer(&mut self, dst: usize, env: Envelope) -> bool {
        self.peers[dst].send(env).is_ok()
    }

    fn recv(&mut self) -> Envelope {
        self.inbox
            .recv()
            .expect("fabric senders live for the pool lifetime")
    }

    fn try_recv(&mut self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in TransportKind::ALL {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TransportKind::parse("tcp"), None);
        assert!(TransportKind::Proc.serializes());
        assert!(!TransportKind::Mpsc.serializes());
        assert!(!TransportKind::Shm.serializes());
    }

    #[test]
    fn mpsc_fabric_delivers_point_to_point() {
        let mut eps = mpsc_fabric(3);
        assert_eq!(eps[1].node(), 1);
        assert_eq!(eps[1].p(), 3);
        eps[0].send(2, Box::new(41i64));
        eps[1].send(2, Box::new(1i64));
        let a = *eps[2].recv().downcast::<i64>().unwrap();
        let b = *eps[2].try_recv().unwrap().downcast::<i64>().unwrap();
        assert_eq!(a + b, 42);
        assert!(eps[2].try_recv().is_none());
    }
}
