//! Lock-free shared-memory fabric: `p × p` SPSC ring buffers.
//!
//! Each directed (src, dst) pair owns one fixed-capacity Lamport ring:
//! the producer side is touched only by src's endpoint, the consumer
//! side only by dst's endpoint, so a `head`/`tail` pair of atomics with
//! acquire/release ordering is sufficient — no locks, no CAS on the hot
//! path. A full ring makes the producer busy-wait (counted as
//! `ring_full_spins`); an empty sweep makes the consumer spin briefly
//! and then park (`std::thread::park_timeout`, counted as
//! `transport_park_ns`), to be unparked by the next producer that
//! publishes to it.
//!
//! The slot discipline deliberately assumes nothing beyond the ring
//! storage being visible to both sides: indices are plain atomics and
//! slots are fixed-size, so the same protocol would run over a
//! `memmap`-style shared region byte-for-byte. In this workspace (no
//! external crates, hence no `mmap` binding) the rings live on the
//! shared heap; the multi-process launcher (`transport::proc`) instead
//! ships the serialized wire format over pipes.

// The ring's slot array is the one place the transport layer needs raw
// shared mutability; the SPSC contract (one producer endpoint, one
// consumer endpoint per ring, enforced by `fabric()` handing each
// direction to exactly one node) makes the accesses disjoint.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

use super::{Endpoint, Envelope};
use crate::pool::lock_clean;

/// Slots per directed ring. Power of two; small enough that `p × p`
/// rings stay cheap at `p = 32`, large enough that the batched executor
/// (one envelope per (src, dst) pair per statement) never fills a ring
/// in steady state.
pub(crate) const RING_CAP: usize = 64;

/// Consumer-side empty sweeps over all inbound rings before parking,
/// when there is headroom to spin against a concurrently-running
/// producer. On a machine without that headroom (one hardware thread),
/// spinning only steals the core the producer needs, so the consumer
/// skips straight to the yield phase.
const RECV_SPIN_SWEEPS: u32 = 256;

/// Empty sweeps interleaved with `yield_now` after the spin phase and
/// before parking: on an oversubscribed core this hands the CPU to a
/// runnable producer at scheduler cost rather than `PARK_SLICE` latency.
const RECV_YIELD_SWEEPS: u32 = 64;

/// Spin-phase length for this machine: [`RECV_SPIN_SWEEPS`] with real
/// parallelism, zero without.
fn spin_sweeps() -> u32 {
    use std::sync::OnceLock;
    static SWEEPS: OnceLock<u32> = OnceLock::new();
    *SWEEPS.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => RECV_SPIN_SWEEPS,
        _ => 0,
    })
}

/// Park slice; bounds the cost of a lost wakeup race without a lock on
/// the producer's publish path.
const PARK_SLICE: Duration = Duration::from_micros(200);

/// A fixed-capacity single-producer single-consumer ring.
///
/// `head` is the next slot to pop (written only by the consumer), `tail`
/// the next slot to push (written only by the producer); both grow
/// without bound and are reduced mod capacity on use, so `tail - head`
/// is the current occupancy.
pub(crate) struct Ring {
    slots: Box<[UnsafeCell<Option<Envelope>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: the SPSC contract makes slot accesses disjoint: the producer
// writes `slots[tail % cap]` only while that slot is outside the
// consumer's window (`tail - head < cap` checked with an Acquire load of
// `head`), and publishes it with a Release store of `tail`; the consumer
// mirrors this. Envelope is Send, so moving it across the fence is fine.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(cap: usize) -> Ring {
        assert!(
            cap.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        Ring {
            slots: (0..cap).map(|_| UnsafeCell::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: publishes `env`, or hands it back if the ring is
    /// full right now.
    pub(crate) fn try_push(&self, env: Envelope) -> Result<(), Envelope> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(env);
        }
        let slot = &self.slots[tail % self.slots.len()];
        // SAFETY: `tail - head < cap`, so the consumer cannot touch this
        // slot until the Release store below makes the write visible.
        unsafe { *slot.get() = Some(env) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: takes the oldest envelope, if any.
    pub(crate) fn try_pop(&self) -> Option<Envelope> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.slots[head % self.slots.len()];
        // SAFETY: `head < tail`, so the producer published this slot
        // (Acquire above pairs with its Release) and will not rewrite it
        // until the Release store below moves it out of the window.
        let env = unsafe { (*slot.get()).take() }.expect("published slot holds an envelope");
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(env)
    }

    /// Current occupancy (racy; exact only from the consumer thread).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

/// Wakeup latch for one consumer. Producers set `pending` and unpark
/// whatever thread is registered; the consumer registers itself, checks
/// `pending`, and parks with a bounded timeout so a lost race costs one
/// [`PARK_SLICE`] of latency, never a hang.
struct Parker {
    pending: AtomicBool,
    sleeper: Mutex<Option<Thread>>,
}

impl Parker {
    fn new() -> Parker {
        Parker {
            pending: AtomicBool::new(false),
            sleeper: Mutex::new(None),
        }
    }

    /// Producer side, after publishing to one of the consumer's rings.
    fn notify(&self) {
        self.pending.store(true, Ordering::SeqCst);
        if let Some(t) = lock_clean(&self.sleeper).as_ref() {
            t.unpark();
        }
    }

    /// Consumer side, after [`RECV_SPIN_SWEEPS`] empty sweeps. Returns
    /// the nanoseconds actually spent parked (0 when a notification was
    /// already pending), timed only under tracing.
    fn park(&self) -> u64 {
        *lock_clean(&self.sleeper) = Some(std::thread::current());
        let mut parked_ns = 0;
        if !self.pending.swap(false, Ordering::SeqCst) {
            if bcag_trace::enabled() {
                let t0 = std::time::Instant::now();
                std::thread::park_timeout(PARK_SLICE);
                parked_ns = t0.elapsed().as_nanos() as u64;
            } else {
                std::thread::park_timeout(PARK_SLICE);
            }
        }
        *lock_clean(&self.sleeper) = None;
        parked_ns
    }
}

/// The shared state of one `p`-node ring fabric.
pub(crate) struct Fabric {
    p: usize,
    /// Directed rings, indexed `src * p + dst`.
    rings: Vec<Ring>,
    /// One wakeup latch per consumer node.
    parkers: Vec<Parker>,
}

/// One node's handle on a [`Fabric`].
struct RingEndpoint {
    m: usize,
    fabric: Arc<Fabric>,
    /// Round-robin sweep start, for fairness across sources.
    cursor: usize,
}

/// Builds the `p` connected endpoints of a fresh ring fabric.
pub(crate) fn fabric(p: usize) -> Vec<Box<dyn Endpoint>> {
    let fabric = Arc::new(Fabric {
        p,
        rings: (0..p * p).map(|_| Ring::new(RING_CAP)).collect(),
        parkers: (0..p).map(|_| Parker::new()).collect(),
    });
    (0..p)
        .map(|m| {
            Box::new(RingEndpoint {
                m,
                fabric: Arc::clone(&fabric),
                cursor: 0,
            }) as Box<dyn Endpoint>
        })
        .collect()
}

impl RingEndpoint {
    /// One sweep over all inbound rings, starting at the fairness cursor.
    fn sweep(&mut self) -> Option<Envelope> {
        let p = self.fabric.p;
        for i in 0..p {
            let src = (self.cursor + i) % p;
            if let Some(env) = self.fabric.rings[src * p + self.m].try_pop() {
                self.cursor = (src + 1) % p;
                return Some(env);
            }
        }
        None
    }
}

impl Endpoint for RingEndpoint {
    fn node(&self) -> usize {
        self.m
    }

    fn p(&self) -> usize {
        self.fabric.p
    }

    fn send(&mut self, dst: usize, env: Envelope) {
        let ring = &self.fabric.rings[self.m * self.fabric.p + dst];
        let mut env = env;
        let mut spins = 0u64;
        loop {
            match ring.try_push(env) {
                Ok(()) => break,
                Err(back) => {
                    env = back;
                    spins += 1;
                    std::hint::spin_loop();
                    if spins % 1024 == 0 {
                        // The consumer is far behind; stop burning the
                        // core it may be waiting for.
                        std::thread::yield_now();
                    }
                }
            }
        }
        if spins > 0 {
            bcag_trace::count("ring_full_spins", spins);
        }
        self.fabric.parkers[dst].notify();
    }

    fn offer(&mut self, dst: usize, env: Envelope) -> bool {
        let ok = self.fabric.rings[self.m * self.fabric.p + dst]
            .try_push(env)
            .is_ok();
        if ok {
            self.fabric.parkers[dst].notify();
        }
        ok
    }

    fn recv(&mut self) -> Envelope {
        let spin = spin_sweeps();
        let mut parked_ns = 0u64;
        let mut sweeps = 0u32;
        loop {
            if let Some(env) = self.sweep() {
                if parked_ns > 0 {
                    bcag_trace::count("transport_park_ns", parked_ns);
                    bcag_trace::record("transport_park_ns", parked_ns);
                }
                return env;
            }
            sweeps += 1;
            if sweeps < spin {
                std::hint::spin_loop();
            } else if sweeps < spin + RECV_YIELD_SWEEPS {
                std::thread::yield_now();
            } else {
                parked_ns += self.fabric.parkers[self.m].park();
            }
        }
    }

    fn try_recv(&mut self) -> Option<Envelope> {
        self.sweep()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(v: i64) -> Envelope {
        Box::new(v)
    }

    fn val(e: Envelope) -> i64 {
        *e.downcast::<i64>().expect("i64 payload")
    }

    #[test]
    fn ring_is_fifo_and_wraps() {
        let ring = Ring::new(4);
        // Several wrap-arounds worth of traffic through a 4-slot ring.
        let mut next_out = 0i64;
        for batch in 0..10i64 {
            for i in 0..3 {
                ring.try_push(env(batch * 3 + i)).ok().unwrap();
            }
            for _ in 0..3 {
                assert_eq!(val(ring.try_pop().unwrap()), next_out);
                next_out += 1;
            }
        }
        assert!(ring.try_pop().is_none());
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn full_ring_rejects_until_drained() {
        let ring = Ring::new(2);
        ring.try_push(env(1)).ok().unwrap();
        ring.try_push(env(2)).ok().unwrap();
        let back = ring.try_push(env(3)).err().expect("full");
        assert_eq!(val(back), 3);
        assert_eq!(val(ring.try_pop().unwrap()), 1);
        ring.try_push(env(3)).ok().unwrap();
        assert_eq!(val(ring.try_pop().unwrap()), 2);
        assert_eq!(val(ring.try_pop().unwrap()), 3);
    }

    #[test]
    fn spsc_stress_delivers_everything_in_order() {
        let ring = Arc::new(Ring::new(8));
        let n = 50_000i64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..n {
                    let mut e = env(i);
                    loop {
                        match ring.try_push(e) {
                            Ok(()) => break,
                            Err(back) => {
                                e = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let mut expected = 0i64;
        while expected < n {
            if let Some(e) = ring.try_pop() {
                assert_eq!(val(e), expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(ring.try_pop().is_none());
    }

    #[test]
    fn endpoints_deliver_across_threads_with_parking() {
        let mut eps = fabric(2);
        let consumer = eps.remove(1);
        let mut producer = eps.remove(0);
        let handle = std::thread::spawn(move || {
            let mut consumer = consumer;
            // Outlast the consumer's spin phase so the park path runs.
            (0..3).map(|_| val(consumer.recv())).collect::<Vec<_>>()
        });
        std::thread::sleep(Duration::from_millis(5));
        for i in 10..13 {
            producer.send(1, env(i));
        }
        assert_eq!(handle.join().unwrap(), vec![10, 11, 12]);
    }
}
