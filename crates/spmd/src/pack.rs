//! Section packing — message vectorization.
//!
//! Message-passing runtimes do not send strided elements one by one; they
//! *pack* a processor's share of a section into a contiguous buffer, send
//! it as one message, and *unpack* on the other side. The pack loop is the
//! same gap-table traversal as the compute loop (the access sequence tells
//! each node exactly which local addresses participate, in section-rank
//! order), so packing is another direct client of the paper's algorithm —
//! and, through the [`bcag_core::runs`] contiguity analysis, it collapses
//! to `memcpy`-grade slice copies wherever the gap table is constant:
//! unit-gap runs become `extend_from_slice`/`copy_from_slice`, constant
//! wide-gap runs become tight strided loops. [`PackMode`] keeps the
//! historical element-by-element walk alive for ablation; all modes
//! produce bit-identical buffers and counter totals.
//!
//! The default mode is [`PackMode::Tuned`]: each call resolves to runs
//! or the scalar walk per the plan's cached
//! [`bcag_core::tune::DispatchDecision`] (line-utilization driven — see
//! [`bcag_core::tune`]), unless `BCAG_TUNE=fixed` pins the historical
//! run-coalesced default. Explicitly forced modes are honored as given,
//! so `PackMode::Runs` is a genuine A/B baseline.

use std::sync::atomic::{AtomicU8, Ordering};

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_core::tune::{self, PackChoice, TuneMode};

use crate::cache;
use crate::comm::PackValue;
use crate::darray::DistArray;

/// Pack/unpack strategy — the ablation axis of the run-coalescing
/// optimization, mirroring [`crate::comm::ExecMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackMode {
    /// Run-coalesced: one slice copy per constant-gap run of the access
    /// sequence.
    Runs,
    /// Historical element-by-element gap-table walk, kept for A/B
    /// comparison; produces bit-identical buffers.
    PerElement,
    /// Resolve per the plan's cached [`bcag_core::tune::DispatchDecision`]
    /// (the default under `BCAG_TUNE=auto`).
    Tuned,
}

impl PackMode {
    /// Stable label for reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            PackMode::Runs => "runs",
            PackMode::PerElement => "per-element",
            PackMode::Tuned => "tuned",
        }
    }
}

/// The process-default [`PackMode`]: [`PackMode::Tuned`] under
/// `BCAG_TUNE=auto` (the default), the historical [`PackMode::Runs`]
/// under `BCAG_TUNE=fixed`.
pub fn default_pack_mode() -> PackMode {
    match tune::default_tune() {
        TuneMode::Auto => PackMode::Tuned,
        TuneMode::Fixed => PackMode::Runs,
    }
}

/// Last concrete pack mode a pack/unpack (or fused epoch) resolved to:
/// 0 = none yet, 1 = runs, 2 = per-element. Feeds the statement flight
/// recorder, which records the decision actually used rather than a
/// hardcoded default.
static LAST_PACK: AtomicU8 = AtomicU8::new(0);

/// Notes the concrete mode a traversal resolved to (fused epochs note
/// [`PackMode::Runs`] — their gathers are run-coalesced by compilation).
pub(crate) fn note_pack_mode(mode: PackMode) {
    let v = match mode {
        PackMode::Runs => 1,
        PackMode::PerElement => 2,
        PackMode::Tuned => return,
    };
    LAST_PACK.store(v, Ordering::Relaxed);
}

/// The last concrete mode noted by [`note_pack_mode`], if any.
pub fn last_pack_mode() -> Option<PackMode> {
    match LAST_PACK.load(Ordering::Relaxed) {
        1 => Some(PackMode::Runs),
        2 => Some(PackMode::PerElement),
        _ => None,
    }
}

/// Resolves [`PackMode::Tuned`] to a concrete mode via the cached
/// per-node dispatch decisions (recording the `tune_decision_*` trace
/// counter); forced modes pass through untouched.
fn resolve_mode<T: PackValue>(
    mode: PackMode,
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
) -> Result<PackMode> {
    if mode != PackMode::Tuned {
        return Ok(mode);
    }
    let ds = cache::decisions(arr.p(), arr.k(), section, method, std::mem::size_of::<T>())?;
    let resolved = match ds[m as usize].pack {
        PackChoice::Runs => PackMode::Runs,
        PackChoice::PerElement => PackMode::PerElement,
    };
    if bcag_trace::enabled() {
        bcag_trace::count(
            match resolved {
                PackMode::Runs => "tune_decision_runs",
                _ => "tune_decision_per_element",
            },
            1,
        );
    }
    Ok(resolved)
}

/// Packs processor `m`'s share of `arr(section)` into a contiguous buffer,
/// in increasing global-index order. Returns an empty buffer when the
/// processor owns nothing.
pub fn pack<T: PackValue>(
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
) -> Result<Vec<T>> {
    let mut out = Vec::new();
    pack_with_buf(arr, section, m, method, &mut out)?;
    Ok(out)
}

/// Like [`pack`], but fills a caller-provided buffer (cleared first), so
/// steady-state loops can reuse one allocation grown to its high-water
/// mark instead of allocating per call. Returns the packed count.
pub fn pack_with_buf<T: PackValue>(
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    out: &mut Vec<T>,
) -> Result<usize> {
    pack_with_buf_mode(arr, section, m, method, default_pack_mode(), out)
}

/// [`pack_with_buf`] with an explicit [`PackMode`] — the ablation entry
/// point for comparing run-coalesced against per-element packing.
pub fn pack_with_buf_mode<T: PackValue>(
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    mode: PackMode,
    out: &mut Vec<T>,
) -> Result<usize> {
    let _sp = bcag_trace::span("spmd.pack");
    let _t = bcag_trace::timed_span("pack_ns");
    out.clear();
    let plans = cache::plans(arr.p(), arr.k(), section, method)?;
    let plan = &plans[m as usize];
    if plan.start.is_none() {
        bcag_trace::count("elements_packed", 0);
        return Ok(0);
    }
    let mode = resolve_mode(mode, arr, section, m, method)?;
    note_pack_mode(mode);
    let local = arr.local(m);
    // The owned count falls out of the run plan in closed form: size the
    // buffer once, no reallocation during the walk.
    out.reserve(plan.runs.count() as usize);
    match mode {
        PackMode::Runs => {
            let mut seg_count = 0u64;
            let mut seg_elems = 0u64;
            plan.runs.for_each_segment(|seg| {
                T::extend_run(
                    out,
                    local,
                    seg.addr as usize,
                    seg.gap as usize,
                    seg.len as usize,
                );
                if seg.len >= 2 {
                    seg_count += 1;
                    seg_elems += seg.len as u64;
                }
            });
            bcag_core::runs::count_coalesced(seg_count, seg_elems);
        }
        PackMode::PerElement => {
            let start = plan.start.expect("checked non-empty above");
            let mut addr = start;
            let mut i = 0usize;
            while addr <= plan.last {
                out.push(local[addr as usize].clone());
                if plan.delta_m.is_empty() {
                    break;
                }
                addr += plan.delta_m[i];
                i += 1;
                if i == plan.delta_m.len() {
                    i = 0;
                }
            }
        }
        PackMode::Tuned => unreachable!("resolved above"),
    }
    bcag_trace::count("elements_packed", out.len() as u64);
    bcag_trace::count(
        "bytes_packed",
        (out.len() * std::mem::size_of::<T>()) as u64,
    );
    Ok(out.len())
}

/// Unpacks a buffer produced by [`pack`] back into processor `m`'s share of
/// `arr(section)` (inverse traversal order). The buffer length must match
/// the processor's owned count.
pub fn unpack<T: PackValue>(
    arr: &mut DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    buffer: &[T],
) -> Result<()> {
    unpack_mode(arr, section, m, method, default_pack_mode(), buffer)
}

/// [`unpack`] with an explicit [`PackMode`].
pub fn unpack_mode<T: PackValue>(
    arr: &mut DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    mode: PackMode,
    buffer: &[T],
) -> Result<()> {
    let _sp = bcag_trace::span("spmd.unpack");
    let _t = bcag_trace::timed_span("unpack_ns");
    let plans = cache::plans(arr.p(), arr.k(), section, method)?;
    let plan = &plans[m as usize];
    if plan.start.is_none() {
        return if buffer.is_empty() {
            bcag_trace::count("elements_unpacked", 0);
            Ok(())
        } else {
            Err(BcagError::Precondition(
                "buffer for a processor that owns nothing",
            ))
        };
    }
    // The owned count is closed-form; validate the buffer up front so the
    // write loop below never has to bounds-check mid-run.
    let owned = plan.runs.count() as usize;
    if buffer.len() < owned {
        return Err(BcagError::Precondition("buffer too short for owned count"));
    }
    if buffer.len() > owned {
        return Err(BcagError::Precondition("buffer longer than owned count"));
    }
    // The degenerate-run fallback that used to live here (mostly-
    // singleton plans taking the scalar walk) is now owned by the tuner:
    // [`PackMode::Tuned`] resolves it from the cached decision, together
    // with the line-utilization criterion, while explicitly forced modes
    // are honored as given — forced `Runs` is a genuine A/B baseline.
    let mode = resolve_mode(mode, arr, section, m, method)?;
    note_pack_mode(mode);
    let local = arr.local_mut(m);
    match mode {
        PackMode::Runs => {
            let mut cursor = 0usize;
            let mut seg_count = 0u64;
            let mut seg_elems = 0u64;
            plan.runs.for_each_segment(|seg| {
                let len = seg.len as usize;
                T::write_run(
                    local,
                    seg.addr as usize,
                    seg.gap as usize,
                    &buffer[cursor..cursor + len],
                );
                cursor += len;
                if seg.len >= 2 {
                    seg_count += 1;
                    seg_elems += seg.len as u64;
                }
            });
            bcag_core::runs::count_coalesced(seg_count, seg_elems);
        }
        PackMode::PerElement => {
            let start = plan.start.expect("checked non-empty above");
            let mut addr = start;
            let mut i = 0usize;
            let mut cursor = 0usize;
            while addr <= plan.last {
                local[addr as usize] = buffer[cursor].clone();
                cursor += 1;
                if plan.delta_m.is_empty() {
                    break;
                }
                addr += plan.delta_m[i];
                i += 1;
                if i == plan.delta_m.len() {
                    i = 0;
                }
            }
        }
        PackMode::Tuned => unreachable!("resolved above"),
    }
    bcag_trace::count("elements_unpacked", owned as u64);
    bcag_trace::count("bytes_unpacked", (owned * std::mem::size_of::<T>()) as u64);
    Ok(())
}

/// Gathers the whole section, in section order, by concatenating the
/// per-processor packs in *rank-merged* order: the section's `t`-th element
/// comes from whichever processor owns it, so a simple per-processor
/// concatenation is wrong; this merges by global index, which the packs
/// already provide sorted.
pub fn gather_section<T: PackValue + Default>(
    arr: &DistArray<T>,
    section: &RegularSection,
    method: Method,
) -> Result<Vec<T>> {
    let mut out = vec![T::default(); section.count() as usize];
    // Plans come from the process-wide cache; reuse one pack buffer (grown
    // to the largest share) across m.
    let plans = cache::plans(arr.p(), arr.k(), section, method)?;
    let mut packed: Vec<T> = Vec::new();
    for m in 0..arr.p() {
        pack_with_buf(arr, section, m, method, &mut packed)?;
        // Recover each packed value's section rank by walking the run plan
        // alongside the pack: ranks follow local addresses in lockstep.
        let plan = &plans[m as usize];
        if plan.start.is_none() {
            continue;
        }
        let norm = section.normalized();
        let lay = arr.layout();
        let mut cursor = 0usize;
        plan.runs.for_each_segment(|seg| {
            for j in 0..seg.len {
                let g = lay.global_of(m, seg.addr + j * seg.gap);
                let rank = (g - norm.lo) / norm.step;
                out[rank as usize] = packed[cursor].clone();
                cursor += 1;
            }
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let n = 300i64;
        let data: Vec<i64> = (0..n).map(|i| i * 3 + 1).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(4, 292, 9).unwrap();
        let mut rebuilt = DistArray::new(4, 8, n, 0i64).unwrap();
        let mut total = 0usize;
        for m in 0..4 {
            let buf = pack(&arr, &sec, m, Method::Lattice).unwrap();
            total += buf.len();
            unpack(&mut rebuilt, &sec, m, Method::Lattice, &buf).unwrap();
        }
        assert_eq!(total as i64, sec.count());
        let g = rebuilt.to_global();
        for i in 0..n {
            let expect = if sec.contains(i) { data[i as usize] } else { 0 };
            assert_eq!(g[i as usize], expect, "i={i}");
        }
    }

    #[test]
    fn pack_order_is_global_order() {
        let data: Vec<i64> = (0..320).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(4, 301, 9).unwrap();
        let buf = pack(&arr, &sec, 1, Method::Lattice).unwrap();
        // Processor 1's owned elements in increasing order (Figure 6 walk).
        assert_eq!(buf, vec![13, 40, 76, 139, 175, 202, 238, 265, 301]);
    }

    #[test]
    fn pack_modes_bit_identical() {
        let data: Vec<i64> = (0..640).map(|i| i * 11 + 3).collect();
        let arr = DistArray::from_global(4, 16, &data).unwrap();
        for (l, u, s) in [(0, 639, 1), (2, 600, 2), (5, 637, 7), (0, 639, 17)] {
            let sec = RegularSection::new(l, u, s).unwrap();
            for m in 0..4 {
                let mut runs = Vec::new();
                let mut per = Vec::new();
                pack_with_buf_mode(&arr, &sec, m, Method::Lattice, PackMode::Runs, &mut runs)
                    .unwrap();
                pack_with_buf_mode(
                    &arr,
                    &sec,
                    m,
                    Method::Lattice,
                    PackMode::PerElement,
                    &mut per,
                )
                .unwrap();
                assert_eq!(runs, per, "m={m} sec=({l}:{u}:{s})");
            }
        }
    }

    #[test]
    fn tuned_mode_is_bit_identical_and_counts_decisions() {
        let data: Vec<i64> = (0..4096).map(|i| i * 7 + 1).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        // Dense (tuned → runs), sparse s=k+1 (tuned → per-element),
        // gap-64B uniform (tuned → per-element), mixed.
        for (l, u, s) in [
            (0i64, 4095i64, 1i64),
            (0, 4095, 9),
            (0, 4088, 8),
            (3, 4000, 17),
        ] {
            let sec = RegularSection::new(l, u, s).unwrap();
            for m in 0..4 {
                let mut tuned = Vec::new();
                let mut runs = Vec::new();
                pack_with_buf_mode(&arr, &sec, m, Method::Lattice, PackMode::Tuned, &mut tuned)
                    .unwrap();
                pack_with_buf_mode(&arr, &sec, m, Method::Lattice, PackMode::Runs, &mut runs)
                    .unwrap();
                assert_eq!(tuned, runs, "m={m} sec=({l}:{u}:{s})");
                // Tuned unpack round-trips through every mode's buffer.
                let mut rebuilt = DistArray::new(4, 8, 4096, 0i64).unwrap();
                unpack_mode(
                    &mut rebuilt,
                    &sec,
                    m,
                    Method::Lattice,
                    PackMode::Tuned,
                    &tuned,
                )
                .unwrap();
                let mut fixed = DistArray::new(4, 8, 4096, 0i64).unwrap();
                unpack_mode(&mut fixed, &sec, m, Method::Lattice, PackMode::Runs, &runs).unwrap();
                assert_eq!(rebuilt.local(m), fixed.local(m), "m={m} sec=({l}:{u}:{s})");
            }
        }
        // The sparse shape resolves per-element and records the decision.
        let sec = RegularSection::new(0, 4095, 9).unwrap();
        let ((), trace) = bcag_trace::capture(|| {
            let mut buf = Vec::new();
            for m in 0..4 {
                pack_with_buf_mode(&arr, &sec, m, Method::Lattice, PackMode::Tuned, &mut buf)
                    .unwrap();
            }
        });
        assert_eq!(trace.counter_total("tune_decision_per_element"), 4);
        assert_eq!(trace.counter_total("tune_decision_runs"), 0);
        // Other lib tests pack concurrently, so only assert a mode was
        // noted — the flight-recorder wiring is pinned in bcag-rt.
        assert!(last_pack_mode().is_some());
    }

    #[test]
    fn default_mode_follows_tune_mode() {
        let before = bcag_core::tune::default_tune();
        bcag_core::tune::set_default_tune(bcag_core::tune::TuneMode::Auto);
        assert_eq!(default_pack_mode(), PackMode::Tuned);
        bcag_core::tune::set_default_tune(bcag_core::tune::TuneMode::Fixed);
        assert_eq!(default_pack_mode(), PackMode::Runs);
        bcag_core::tune::set_default_tune(before);
        assert_eq!(PackMode::Tuned.name(), "tuned");
    }

    #[test]
    fn gather_reconstructs_section() {
        let data: Vec<i64> = (0..500).map(|i| 7 * i).collect();
        let arr = DistArray::from_global(8, 4, &data).unwrap();
        let sec = RegularSection::new(3, 495, 11).unwrap();
        let gathered = gather_section(&arr, &sec, Method::Lattice).unwrap();
        let expect: Vec<i64> = sec.iter().map(|i| data[i as usize]).collect();
        assert_eq!(gathered, expect);
    }

    #[test]
    fn buffer_length_validation() {
        let mut arr = DistArray::new(2, 4, 40, 0i64).unwrap();
        let sec = RegularSection::new(0, 39, 3).unwrap();
        let buf = pack(&arr, &sec, 0, Method::Lattice).unwrap();
        assert!(unpack(&mut arr, &sec, 0, Method::Lattice, &buf[..buf.len() - 1]).is_err());
        let mut too_long = buf.clone();
        too_long.push(0);
        assert!(unpack(&mut arr, &sec, 0, Method::Lattice, &too_long).is_err());
    }

    #[test]
    fn empty_processor_pack() {
        let arr = DistArray::new(2, 1, 40, 5i64).unwrap();
        let sec = RegularSection::new(0, 39, 2).unwrap(); // proc 1 owns none
        assert!(pack(&arr, &sec, 1, Method::Lattice).unwrap().is_empty());
        let mut arr2 = arr.clone();
        assert!(unpack(&mut arr2, &sec, 1, Method::Lattice, &[]).is_ok());
        assert!(unpack(&mut arr2, &sec, 1, Method::Lattice, &[1]).is_err());
    }
}
