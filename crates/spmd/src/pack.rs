//! Section packing — message vectorization.
//!
//! Message-passing runtimes do not send strided elements one by one; they
//! *pack* a processor's share of a section into a contiguous buffer, send
//! it as one message, and *unpack* on the other side. The pack loop is the
//! same gap-table traversal as the compute loop (the access sequence tells
//! each node exactly which local addresses participate, in section-rank
//! order), so packing is another direct client of the paper's algorithm.

use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::start::count_owned;

use crate::assign::plan_section;
use crate::darray::DistArray;

/// Packs processor `m`'s share of `arr(section)` into a contiguous buffer,
/// in increasing global-index order. Returns an empty buffer when the
/// processor owns nothing.
pub fn pack<T: Clone + Send + Sync>(
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
) -> Result<Vec<T>> {
    let mut out = Vec::new();
    pack_with_buf(arr, section, m, method, &mut out)?;
    Ok(out)
}

/// Like [`pack`], but fills a caller-provided buffer (cleared first), so
/// steady-state loops can reuse one allocation grown to its high-water
/// mark instead of allocating per call. Returns the packed count.
pub fn pack_with_buf<T: Clone + Send + Sync>(
    arr: &DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    out: &mut Vec<T>,
) -> Result<usize> {
    let _sp = bcag_trace::span("spmd.pack");
    out.clear();
    let plans = plan_section(arr.p(), arr.k(), section, method)?;
    let plan = &plans[m as usize];
    let Some(start) = plan.start else {
        bcag_trace::count("elements_packed", 0);
        return Ok(0);
    };
    let local = arr.local(m);
    // The owned count is known in closed form: size the buffer once.
    let norm = section.normalized();
    let cap = if norm.count == 0 {
        0
    } else {
        let problem = Problem::new(arr.p(), arr.k(), norm.lo, norm.step)?;
        count_owned(&problem, m, norm.hi)? as usize
    };
    out.reserve(cap);
    let mut addr = start;
    let mut i = 0usize;
    while addr <= plan.last {
        out.push(local[addr as usize].clone());
        if plan.delta_m.is_empty() {
            break;
        }
        addr += plan.delta_m[i];
        i += 1;
        if i == plan.delta_m.len() {
            i = 0;
        }
    }
    bcag_trace::count("elements_packed", out.len() as u64);
    bcag_trace::count(
        "bytes_packed",
        (out.len() * std::mem::size_of::<T>()) as u64,
    );
    Ok(out.len())
}

/// Unpacks a buffer produced by [`pack`] back into processor `m`'s share of
/// `arr(section)` (inverse traversal order). The buffer length must match
/// the processor's owned count.
pub fn unpack<T: Clone + Send + Sync>(
    arr: &mut DistArray<T>,
    section: &RegularSection,
    m: i64,
    method: Method,
    buffer: &[T],
) -> Result<()> {
    use bcag_core::error::BcagError;
    let plans = plan_section(arr.p(), arr.k(), section, method)?;
    let plan = &plans[m as usize];
    let Some(start) = plan.start else {
        return if buffer.is_empty() {
            Ok(())
        } else {
            Err(BcagError::Precondition(
                "buffer for a processor that owns nothing",
            ))
        };
    };
    let local = arr.local_mut(m);
    let mut addr = start;
    let mut i = 0usize;
    let mut cursor = 0usize;
    while addr <= plan.last {
        let Some(v) = buffer.get(cursor) else {
            return Err(BcagError::Precondition("buffer too short for owned count"));
        };
        local[addr as usize] = v.clone();
        cursor += 1;
        if plan.delta_m.is_empty() {
            break;
        }
        addr += plan.delta_m[i];
        i += 1;
        if i == plan.delta_m.len() {
            i = 0;
        }
    }
    if cursor != buffer.len() {
        return Err(BcagError::Precondition("buffer longer than owned count"));
    }
    Ok(())
}

/// Gathers the whole section, in section order, by concatenating the
/// per-processor packs in *rank-merged* order: the section's `t`-th element
/// comes from whichever processor owns it, so a simple per-processor
/// concatenation is wrong; this merges by global index, which the packs
/// already provide sorted.
pub fn gather_section<T: Clone + Send + Sync + Default>(
    arr: &DistArray<T>,
    section: &RegularSection,
    method: Method,
) -> Result<Vec<T>> {
    let mut out = vec![T::default(); section.count() as usize];
    // Plans are m-independent to build; hoist them out of the node loop,
    // and reuse one pack buffer (grown to the largest share) across m.
    let plans = plan_section(arr.p(), arr.k(), section, method)?;
    let mut packed: Vec<T> = Vec::new();
    for m in 0..arr.p() {
        pack_with_buf(arr, section, m, method, &mut packed)?;
        // Recover each packed value's section rank from the plan walk.
        let plan = &plans[m as usize];
        let Some(start) = plan.start else { continue };
        let norm = section.normalized();
        let lay = arr.layout();
        // Walk local addresses alongside the pack to compute ranks.
        let mut addr = start;
        let mut i = 0usize;
        let mut cursor = 0usize;
        while addr <= plan.last {
            let g = lay.global_of(m, addr);
            let rank = (g - norm.lo) / norm.step;
            out[rank as usize] = packed[cursor].clone();
            cursor += 1;
            if plan.delta_m.is_empty() {
                break;
            }
            addr += plan.delta_m[i];
            i += 1;
            if i == plan.delta_m.len() {
                i = 0;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let n = 300i64;
        let data: Vec<i64> = (0..n).map(|i| i * 3 + 1).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(4, 292, 9).unwrap();
        let mut rebuilt = DistArray::new(4, 8, n, 0i64).unwrap();
        let mut total = 0usize;
        for m in 0..4 {
            let buf = pack(&arr, &sec, m, Method::Lattice).unwrap();
            total += buf.len();
            unpack(&mut rebuilt, &sec, m, Method::Lattice, &buf).unwrap();
        }
        assert_eq!(total as i64, sec.count());
        let g = rebuilt.to_global();
        for i in 0..n {
            let expect = if sec.contains(i) { data[i as usize] } else { 0 };
            assert_eq!(g[i as usize], expect, "i={i}");
        }
    }

    #[test]
    fn pack_order_is_global_order() {
        let data: Vec<i64> = (0..320).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(4, 301, 9).unwrap();
        let buf = pack(&arr, &sec, 1, Method::Lattice).unwrap();
        // Processor 1's owned elements in increasing order (Figure 6 walk).
        assert_eq!(buf, vec![13, 40, 76, 139, 175, 202, 238, 265, 301]);
    }

    #[test]
    fn gather_reconstructs_section() {
        let data: Vec<i64> = (0..500).map(|i| 7 * i).collect();
        let arr = DistArray::from_global(8, 4, &data).unwrap();
        let sec = RegularSection::new(3, 495, 11).unwrap();
        let gathered = gather_section(&arr, &sec, Method::Lattice).unwrap();
        let expect: Vec<i64> = sec.iter().map(|i| data[i as usize]).collect();
        assert_eq!(gathered, expect);
    }

    #[test]
    fn buffer_length_validation() {
        let mut arr = DistArray::new(2, 4, 40, 0i64).unwrap();
        let sec = RegularSection::new(0, 39, 3).unwrap();
        let buf = pack(&arr, &sec, 0, Method::Lattice).unwrap();
        assert!(unpack(&mut arr, &sec, 0, Method::Lattice, &buf[..buf.len() - 1]).is_err());
        let mut too_long = buf.clone();
        too_long.push(0);
        assert!(unpack(&mut arr, &sec, 0, Method::Lattice, &too_long).is_err());
    }

    #[test]
    fn empty_processor_pack() {
        let arr = DistArray::new(2, 1, 40, 5i64).unwrap();
        let sec = RegularSection::new(0, 39, 2).unwrap(); // proc 1 owns none
        assert!(pack(&arr, &sec, 1, Method::Lattice).unwrap().is_empty());
        let mut arr2 = arr.clone();
        assert!(unpack(&mut arr2, &sec, 1, Method::Lattice, &[]).is_ok());
        assert!(unpack(&mut arr2, &sec, 1, Method::Lattice, &[1]).is_err());
    }
}
