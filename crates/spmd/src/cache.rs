//! Process-wide schedule/plan cache, sharded for contention-free
//! concurrent serving.
//!
//! An interpreter (or any driver) that executes the same statement shape
//! repeatedly — a loop over identical sections — pays the full
//! `CommSchedule::build` / [`plan_section`] cost every iteration even
//! though the result depends only on `(p, k, section)` parameters, never
//! on array contents. This module memoizes both products behind a
//! capacity-bounded, LRU-evicting store, keyed by the exact build
//! parameters and returning shared [`Arc`] handles.
//!
//! The store is built for the many-driver regime the `traffic` bench
//! measures (N interpreted scripts hammering one process-wide cache):
//!
//! * **Sharding** — [`ShardedCache`] splits the key space over
//!   `next_pow2(4 × cores)` independent shards selected by the high bits
//!   of an FxHash ([`bcag_harness::hash`]); threads touching different
//!   keys almost never touch the same lock. `BCAG_CACHE_SHARDS=1`
//!   reproduces the historical single-store semantics (one lock domain,
//!   one global LRU order).
//! * **Read-mostly hits** — each shard is an [`RwLock`] over a small
//!   open-addressed hash table (linear probing, backward-shift
//!   deletion). The hit path takes the *shared* lock, probes by hash,
//!   and refreshes recency by storing a global atomic tick into the
//!   entry's atomic stamp — a hit never takes a write lock, so
//!   concurrent hits on one shard proceed in parallel.
//! * **Single-flight builds** — two threads missing the same key
//!   arbitrate through a per-shard in-flight list: one builds, the rest
//!   wait on a condvar and share the builder's [`Arc`]. Distinct keys
//!   build concurrently; build errors are never cached (every waiter of
//!   a failed flight retries or rebuilds itself).
//!
//! Capacity defaults to [`DEFAULT_CAPACITY`] entries spread evenly over
//! the shards and can be overridden with the `BCAG_SCHED_CACHE_CAP` env
//! var (`0` disables caching entirely; every lookup builds). Both env
//! vars are read once, at first use.
//!
//! Every lookup records a `schedule_cache_hits` or `schedule_cache_misses`
//! counter via [`bcag_trace`], plus occupancy gauges (total and
//! per-shard) on the insert path, so a `--trace` run shows exactly how
//! much rebuild work the cache absorbed and how evenly the shards carry
//! it.

use std::any::{Any, TypeId};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};

use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_harness::hash::{hash_one, next_pow2};

use crate::assign::{plan_section, NodePlan};
use crate::comm::{CommSchedule, ExecMode};
use crate::pool::lock_clean;
use crate::transport::TransportKind;

/// Default maximum number of cached entries (across all shards);
/// least-recently-used entries are evicted shard-locally beyond this.
/// Override with `BCAG_SCHED_CACHE_CAP`.
pub const DEFAULT_CAPACITY: usize = 128;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    /// A communication schedule. `method` is the pattern method of
    /// [`CommSchedule::build`], or `None` for the closed-form
    /// [`CommSchedule::build_lattice`] (a different algorithm, cached
    /// under a different key even though the results agree).
    Schedule {
        p: i64,
        k_a: i64,
        sec_a: (i64, i64, i64),
        k_b: i64,
        sec_b: (i64, i64, i64),
        method: Option<Method>,
        /// The execution context the schedule will run under. The
        /// schedule *data* is context-independent, but keying on the
        /// (exec mode, transport) pair guarantees an A/B run switching
        /// executors mid-process can never observe a plan warmed for —
        /// and potentially specialized to — the other configuration.
        exec: (ExecMode, TransportKind),
    },
    /// A per-node owner-computes plan set from [`plan_section`].
    Plans {
        p: i64,
        k: i64,
        sec: (i64, i64, i64),
        method: Method,
    },
    /// A fused statement program from [`crate::fuse`]: the whole
    /// statement shape (LHS layout/section plus every operand's), the
    /// monomorphized element type, and the execution context it was
    /// compiled for. Stored type-erased so the cache stays monomorphic.
    Fused {
        p: i64,
        k_a: i64,
        sec_a: (i64, i64, i64),
        ops: Vec<(i64, (i64, i64, i64))>,
        tid: TypeId,
        exec: (ExecMode, TransportKind),
        /// Transfer block size (elements) the program was compiled for
        /// (`0` = unblocked). Part of the key so `BCAG_TUNE` A/B flips —
        /// and L2-size overrides in tests — never reuse a program
        /// compiled for the other blocking regime.
        block: usize,
    },
    /// Per-node [`bcag_core::tune::DispatchDecision`]s for one section
    /// shape: the memoized output of the self-tuning pass, cached next
    /// to the plans it describes. Keyed by element width because both
    /// the line-utilization measurement and the block-size model depend
    /// on it.
    Tune {
        p: i64,
        k: i64,
        sec: (i64, i64, i64),
        method: Method,
        elem_bytes: usize,
    },
}

#[derive(Clone)]
enum Value {
    Schedule(Arc<CommSchedule>),
    Plans(Arc<Vec<NodePlan>>),
    Fused(Arc<dyn Any + Send + Sync>),
    Tune(Arc<Vec<bcag_core::tune::DispatchDecision>>),
}

/// One resident entry. The stamp is atomic so the read path can refresh
/// recency under the shard's *shared* lock.
struct Slot<K, V> {
    hash: u64,
    key: K,
    value: V,
    stamp: AtomicU64,
}

/// Open-addressed hash table with linear probing and backward-shift
/// deletion. Slot count is a power of two at least twice the entry
/// capacity, so probe chains stay short and lookups always terminate.
struct Table<K, V> {
    slots: Box<[Option<Slot<K, V>>]>,
    len: usize,
}

impl<K: Eq, V> Table<K, V> {
    fn new(nslots: usize) -> Table<K, V> {
        Table {
            slots: (0..nslots).map(|_| None).collect(),
            len: 0,
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn find(&self, hash: u64, key: &K) -> Option<&Slot<K, V>> {
        let mask = self.mask();
        let mut i = (hash as usize) & mask;
        loop {
            match &self.slots[i] {
                None => return None,
                Some(s) if s.hash == hash && s.key == *key => return Some(s),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    fn insert(&mut self, hash: u64, key: K, value: V, stamp: u64) {
        let mask = self.mask();
        let mut i = (hash as usize) & mask;
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some(Slot {
            hash,
            key,
            value,
            stamp: AtomicU64::new(stamp),
        });
        self.len += 1;
    }

    /// Removes the least-recently-stamped entry; returns false on an
    /// empty table.
    fn evict_lru(&mut self) -> bool {
        let victim = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (i, s.stamp.load(Ordering::Relaxed))))
            .min_by_key(|&(_, stamp)| stamp)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                self.remove_at(i);
                true
            }
            None => false,
        }
    }

    /// Backward-shift deletion: entries displaced past the hole are
    /// shifted back so probe chains never need tombstones.
    fn remove_at(&mut self, idx: usize) {
        let mask = self.mask();
        self.slots[idx] = None;
        self.len -= 1;
        let mut hole = idx;
        let mut i = idx;
        loop {
            i = (i + 1) & mask;
            let Some(s) = &self.slots[i] else { break };
            let home = (s.hash as usize) & mask;
            // The entry at `i` may fill the hole iff the hole lies on
            // its probe path, i.e. its displacement from home reaches at
            // least back to the hole.
            if (i.wrapping_sub(home) & mask) >= (i.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
        }
    }
}

/// One in-progress build: missers of the same key block here instead of
/// duplicating the build.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

enum FlightState<V> {
    Building,
    Done(V),
    Failed,
}

impl<V: Clone> Flight<V> {
    fn new() -> Flight<V> {
        Flight {
            state: Mutex::new(FlightState::Building),
            cv: Condvar::new(),
        }
    }

    /// Blocks until the builder resolves; `None` means the build failed
    /// (errors are not cached — the waiter should retry itself).
    fn wait(&self) -> Option<V> {
        let mut st = lock_clean(&self.state);
        loop {
            match &*st {
                FlightState::Building => {
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Failed => return None,
            }
        }
    }

    fn resolve(&self, value: Option<V>) {
        *lock_clean(&self.state) = match value {
            Some(v) => FlightState::Done(v),
            None => FlightState::Failed,
        };
        self.cv.notify_all();
    }
}

/// One shard: an independent lock domain with its own table, in-flight
/// build list and counters. Counters are atomics so the hit path and
/// [`ShardedCache::stats`] never contend on a lock for bookkeeping.
struct CacheShard<K, V> {
    table: RwLock<Table<K, V>>,
    inflight: Mutex<Vec<(K, Arc<Flight<V>>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// What one lookup did — callers use this to emit their own telemetry
/// (the schedule-cache wrapper turns it into trace counters).
pub struct LookupOutcome<V> {
    /// The cached or freshly built value.
    pub value: V,
    /// Whether the value was already resident (read-path answer).
    pub hit: bool,
    /// Whether inserting the built value displaced an LRU victim.
    pub evicted: bool,
}

/// A sharded, read-mostly, LRU-evicting map: the concurrency engine
/// behind the process-wide schedule cache, public so benches and stress
/// tests can build small instances with explicit capacities and shard
/// counts.
pub struct ShardedCache<K, V> {
    shards: Box<[CacheShard<K, V>]>,
    /// Global recency clock; entries stamp themselves with `tick` values
    /// on every touch, so LRU selection is a min-scan over stamps.
    tick: AtomicU64,
    per_shard_cap: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A store holding up to `capacity` entries (rounded up to a
    /// multiple of the shard count) over `shards` lock domains (rounded
    /// up to a power of two). `capacity == 0` disables retention:
    /// every lookup builds.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache<K, V> {
        let n = next_pow2(shards);
        let per_shard_cap = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n)
        };
        let nslots = next_pow2((per_shard_cap * 2).max(4));
        ShardedCache {
            shards: (0..n)
                .map(|_| CacheShard {
                    table: RwLock::new(Table::new(nslots)),
                    inflight: Mutex::new(Vec::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    evictions: AtomicU64::new(0),
                })
                .collect(),
            tick: AtomicU64::new(0),
            per_shard_cap,
        }
    }

    /// Number of independent lock domains.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Effective total capacity (`per-shard capacity × shards`; 0 means
    /// caching is disabled).
    pub fn capacity(&self) -> usize {
        self.per_shard_cap * self.shards.len()
    }

    /// Shard selection uses the *high* hash bits; table slots use the
    /// low bits, so the two indices are independent.
    fn shard_of(&self, hash: u64) -> &CacheShard<K, V> {
        &self.shards[(hash >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Read-path probe: shared lock, hash probe, atomic recency refresh.
    fn probe(&self, shard: &CacheShard<K, V>, hash: u64, key: &K) -> Option<V> {
        let table = shard.table.read().unwrap_or_else(|e| e.into_inner());
        let slot = table.find(hash, key)?;
        slot.stamp.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some(slot.value.clone())
    }

    /// Write-path insert; returns whether an LRU victim was displaced.
    fn insert(&self, shard: &CacheShard<K, V>, hash: u64, key: &K, value: V) -> bool {
        let mut table = shard.table.write().unwrap_or_else(|e| e.into_inner());
        if table.find(hash, key).is_some() {
            // Only this key's flight owner inserts it, but a concurrent
            // `clear()` + rebuild can race; keep the resident entry.
            return false;
        }
        let mut evicted = false;
        if table.len >= self.per_shard_cap && table.evict_lru() {
            shard.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        table.insert(hash, key.clone(), value, stamp);
        evicted
    }

    /// Looks up `key`, building (outside all locks, single-flight per
    /// key) and inserting on a miss. Exactly one of `hit`/`!hit` is
    /// reported per call, so `Σ hits + Σ misses == Σ lookups` holds
    /// under any interleaving; a waiter that joins another thread's
    /// build counts as a miss.
    pub fn get_or_try_build<E>(
        &self,
        key: K,
        build: impl FnOnce() -> std::result::Result<V, E>,
    ) -> std::result::Result<LookupOutcome<V>, E> {
        let hash = hash_one(&key);
        let shard = self.shard_of(hash);
        if let Some(value) = self.probe(shard, hash, &key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(LookupOutcome {
                value,
                hit: true,
                evicted: false,
            });
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        if self.per_shard_cap == 0 {
            // Caching disabled: every lookup builds, nothing is
            // retained, no flight arbitration.
            return build().map(|value| LookupOutcome {
                value,
                hit: false,
                evicted: false,
            });
        }
        // A caller is the builder at most once; `Option` lets waiters of
        // a failed flight loop back and claim the build themselves.
        let mut build = Some(build);
        loop {
            enum Role<V> {
                Builder(Arc<Flight<V>>),
                Waiter(Arc<Flight<V>>),
            }
            let role = {
                let mut inflight = lock_clean(&shard.inflight);
                // Re-probe under the in-flight lock: a builder that
                // finished between our probe and now has already
                // inserted its value and retired its flight.
                if let Some(value) = self.probe(shard, hash, &key) {
                    return Ok(LookupOutcome {
                        value,
                        hit: false,
                        evicted: false,
                    });
                }
                match inflight.iter().find(|(k, _)| *k == key) {
                    Some((_, f)) => Role::Waiter(Arc::clone(f)),
                    None => {
                        let f = Arc::new(Flight::new());
                        inflight.push((key.clone(), Arc::clone(&f)));
                        Role::Builder(f)
                    }
                }
            };
            match role {
                Role::Waiter(f) => {
                    if let Some(value) = f.wait() {
                        return Ok(LookupOutcome {
                            value,
                            hit: false,
                            evicted: false,
                        });
                    }
                    // The flight failed; errors are not cached. Loop:
                    // re-probe and build ourselves if nobody else is.
                }
                Role::Builder(f) => {
                    let build = build.take().expect("a caller builds at most once");
                    let result = build();
                    let (resolved, evicted) = match &result {
                        Ok(value) => (
                            Some(value.clone()),
                            self.insert(shard, hash, &key, value.clone()),
                        ),
                        Err(_) => (None, false),
                    };
                    {
                        let mut inflight = lock_clean(&shard.inflight);
                        inflight.retain(|(k, _)| k != &key);
                    }
                    f.resolve(resolved);
                    return result.map(|value| LookupOutcome {
                        value,
                        hit: false,
                        evicted,
                    });
                }
            }
        }
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        let hash = hash_one(key);
        let table = self
            .shard_of(hash)
            .table
            .read()
            .unwrap_or_else(|e| e.into_inner());
        table.find(hash, key).is_some()
    }

    /// Cheap `(hits, misses)` totals — atomic sums only, no table locks.
    /// The always-on flight recorder reads this on every statement.
    pub fn counters(&self) -> (u64, u64) {
        let hits = self
            .shards
            .iter()
            .map(|s| s.hits.load(Ordering::Relaxed))
            .sum();
        let misses = self
            .shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum();
        (hits, misses)
    }

    /// Current entry count per shard (shared-lock reads).
    pub fn shard_entries(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.table.read().unwrap_or_else(|e| e.into_inner()).len)
            .collect()
    }

    /// Lifetime hit/miss/eviction totals rolled up over every shard,
    /// plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (hits, misses) = self.counters();
        CacheStats {
            hits,
            misses,
            entries: self.shard_entries().iter().sum(),
            capacity: self.capacity(),
            evictions: self
                .shards
                .iter()
                .map(|s| s.evictions.load(Ordering::Relaxed))
                .sum(),
            shards: self.shards.len(),
        }
    }

    /// Empties every shard (stats totals are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut table = shard.table.write().unwrap_or_else(|e| e.into_inner());
            let nslots = table.slots.len();
            *table = Table::new(nslots);
        }
    }
}

fn store() -> &'static ShardedCache<Key, Value> {
    static STORE: OnceLock<ShardedCache<Key, Value>> = OnceLock::new();
    STORE.get_or_init(|| {
        let cap = parse_cap(std::env::var("BCAG_SCHED_CACHE_CAP").ok().as_deref());
        let shards = parse_shards(std::env::var("BCAG_CACHE_SHARDS").ok().as_deref());
        ShardedCache::new(cap, shards)
    })
}

/// Resolves a `BCAG_SCHED_CACHE_CAP` value: unset or unparsable falls
/// back to [`DEFAULT_CAPACITY`]; `0` disables caching.
fn parse_cap(var: Option<&str>) -> usize {
    match var {
        Some(s) => s.trim().parse().unwrap_or(DEFAULT_CAPACITY),
        None => DEFAULT_CAPACITY,
    }
}

/// Resolves a `BCAG_CACHE_SHARDS` value (rounded up to a power of two):
/// unset or unparsable falls back to [`default_shards`]; `1` reproduces
/// the historical single-store semantics.
fn parse_shards(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => next_pow2(n),
        _ => default_shards(),
    }
}

/// The default shard count: `next_pow2(4 × cores)` — enough lock
/// domains that even a driver count well past the core count rarely
/// collides on one shard.
fn default_shards() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    next_pow2(4 * cores)
}

/// The store's effective total capacity (after the env override).
pub fn capacity() -> usize {
    store().capacity()
}

/// The store's shard count (after the `BCAG_CACHE_SHARDS` override).
pub fn shards() -> usize {
    store().shards()
}

/// Current entry count per shard of the process-wide store — `bcag
/// stats` prints this so skewed key distributions are visible.
pub fn shard_entries() -> Vec<usize> {
    store().shard_entries()
}

/// Cheap `(hits, misses)` lifetime totals of the process-wide store
/// (atomic sums, no table locks) for always-on callers like the
/// statement flight recorder.
pub fn counters() -> (u64, u64) {
    store().counters()
}

/// Cache effectiveness counters (process lifetime totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum entries the store retains (0 = caching disabled).
    pub capacity: usize,
    /// LRU entries displaced to make room for new ones.
    pub evictions: u64,
    /// Independent lock domains the store is split over.
    pub shards: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Returns the lifetime hit/miss/eviction totals and current occupancy.
pub fn stats() -> CacheStats {
    store().stats()
}

/// Empties the cache (stats totals are kept). Intended for tests and
/// memory-sensitive embedders. Occupancy gauges are re-emitted as zero
/// so a trace timeline doesn't show stale entry counts past the clear.
pub fn clear() {
    store().clear();
    if bcag_trace::enabled() {
        bcag_trace::gauge("schedule_cache_entries", 0);
        for i in 0..store().shards() {
            bcag_trace::gauge_dyn(&format!("schedule_cache_shard{i}_entries"), 0);
        }
    }
}

fn sec_key(sec: &RegularSection) -> (i64, i64, i64) {
    (sec.l, sec.u, sec.s)
}

/// The single gauge-emission helper shared by the hit and insert paths
/// (they previously disagreed on the hit-pct denominator): hit
/// percentage on every lookup, occupancy (total and per-shard) only when
/// it can have changed (the insert path).
fn emit_gauges(hit: bool) {
    if !bcag_trace::enabled() {
        return;
    }
    let s = store();
    let (hits, misses) = s.counters();
    bcag_trace::gauge(
        "schedule_cache_hit_pct",
        100 * hits / (hits + misses).max(1),
    );
    if !hit {
        let per_shard = s.shard_entries();
        bcag_trace::gauge(
            "schedule_cache_entries",
            per_shard.iter().sum::<usize>() as u64,
        );
        for (i, n) in per_shard.iter().enumerate() {
            bcag_trace::gauge_dyn(&format!("schedule_cache_shard{i}_entries"), *n as u64);
        }
    }
}

/// Looks up `key` in the process-wide store, building on a miss, and
/// emits the trace counters/gauges the lookup implies.
fn get_or_build(key: Key, build_value: impl FnOnce() -> Result<Value>) -> Result<Value> {
    let outcome = store().get_or_try_build(key, build_value)?;
    if outcome.hit {
        bcag_trace::count("schedule_cache_hits", 1);
    } else {
        bcag_trace::count("schedule_cache_misses", 1);
    }
    if outcome.evicted {
        bcag_trace::count("schedule_cache_evictions", 1);
    }
    emit_gauges(outcome.hit);
    Ok(outcome.value)
}

/// Cached [`CommSchedule::build`], keyed additionally by the execution
/// context (`mode`, `kind`) the caller will run the schedule under.
pub fn schedule(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
    method: Method,
    mode: ExecMode,
    kind: TransportKind,
) -> Result<Arc<CommSchedule>> {
    let key = Key::Schedule {
        p,
        k_a,
        sec_a: sec_key(sec_a),
        k_b,
        sec_b: sec_key(sec_b),
        method: Some(method),
        exec: (mode, kind),
    };
    let v = get_or_build(key, || {
        CommSchedule::build(p, k_a, sec_a, k_b, sec_b, method).map(|s| Value::Schedule(Arc::new(s)))
    })?;
    match v {
        Value::Schedule(s) => Ok(s),
        _ => unreachable!("schedule key maps to schedule value"),
    }
}

/// Cached [`CommSchedule::build_lattice`], keyed additionally by the
/// execution context (`mode`, `kind`) the caller will run the schedule
/// under.
pub fn schedule_lattice(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
    mode: ExecMode,
    kind: TransportKind,
) -> Result<Arc<CommSchedule>> {
    let key = Key::Schedule {
        p,
        k_a,
        sec_a: sec_key(sec_a),
        k_b,
        sec_b: sec_key(sec_b),
        method: None,
        exec: (mode, kind),
    };
    let v = get_or_build(key, || {
        CommSchedule::build_lattice(p, k_a, sec_a, k_b, sec_b).map(|s| Value::Schedule(Arc::new(s)))
    })?;
    match v {
        Value::Schedule(s) => Ok(s),
        _ => unreachable!("schedule key maps to schedule value"),
    }
}

/// Cached [`plan_section`].
pub fn plans(p: i64, k: i64, sec: &RegularSection, method: Method) -> Result<Arc<Vec<NodePlan>>> {
    let key = Key::Plans {
        p,
        k,
        sec: sec_key(sec),
        method,
    };
    let v = get_or_build(key, || {
        plan_section(p, k, sec, method).map(|p| Value::Plans(Arc::new(p)))
    })?;
    match v {
        Value::Plans(p) => Ok(p),
        _ => unreachable!("plans key maps to plans value"),
    }
}

/// Cached fused statement program (built by [`crate::fuse`]), keyed by
/// the full statement shape — LHS `(p, k_a, sec_a)` plus every operand's
/// `(k_b, sec_b)` in order — the monomorphized program type `V` (which
/// carries the element type), and the execution context. Single-flight
/// builds and LRU eviction apply exactly as for schedules and plans.
pub fn fused<V: Send + Sync + 'static>(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    ops: &[(i64, RegularSection)],
    mode: ExecMode,
    kind: TransportKind,
    block: usize,
    build: impl FnOnce() -> Result<Arc<V>>,
) -> Result<Arc<V>> {
    let key = Key::Fused {
        p,
        k_a,
        sec_a: sec_key(sec_a),
        ops: ops.iter().map(|(k, s)| (*k, sec_key(s))).collect(),
        tid: TypeId::of::<V>(),
        exec: (mode, kind),
        block,
    };
    let v = get_or_build(key, || {
        build().map(|f| Value::Fused(f as Arc<dyn Any + Send + Sync>))
    })?;
    match v {
        Value::Fused(f) => Ok(Arc::downcast::<V>(f).expect("fused key carries the program type")),
        _ => unreachable!("fused key maps to fused value"),
    }
}

/// Cached per-node dispatch decisions for one section shape: fetches
/// the (also cached) plans, runs the fast line-utilization analysis
/// bounded at [`bcag_core::tune::ANALYZE_BOUND`] elements on each node's
/// run plan, and memoizes the resulting
/// [`bcag_core::tune::DispatchDecision`]s. Decisions are pure functions
/// of the plan, the element width and the resolved L2 size, so the
/// cache can serve them to every statement touching the shape.
pub fn decisions(
    p: i64,
    k: i64,
    sec: &RegularSection,
    method: Method,
    elem_bytes: usize,
) -> Result<Arc<Vec<bcag_core::tune::DispatchDecision>>> {
    let key = Key::Tune {
        p,
        k,
        sec: sec_key(sec),
        method,
        elem_bytes,
    };
    let v = get_or_build(key, || {
        // Nested cache access is safe: builds run outside shard locks
        // (single-flight), and the plans fetch uses its own flight.
        let plans = plans(p, k, sec, method)?;
        let ds = plans
            .iter()
            .map(|np| {
                let stats = bcag_core::locality::analyze_lines(
                    &np.runs,
                    elem_bytes,
                    bcag_core::tune::ANALYZE_BOUND,
                );
                bcag_core::tune::decide(&stats, &np.runs, elem_bytes)
            })
            .collect();
        Ok(Value::Tune(Arc::new(ds)))
    })?;
    match v {
        Value::Tune(d) => Ok(d),
        _ => unreachable!("tune key maps to tune value"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: (ExecMode, TransportKind) = (ExecMode::Batched, TransportKind::Mpsc);

    #[test]
    fn schedule_hits_share_one_arc() {
        // A key shape deliberately unlike anything else in the test suite.
        let sec_a = RegularSection::new(3, 1203, 25).unwrap();
        let sec_b = RegularSection::new(7, 1207, 25).unwrap();
        let first = schedule(5, 11, &sec_a, 13, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        let second = schedule(5, 11, &sec_a, 13, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // The lattice builder is a distinct key even for identical params.
        let lattice = schedule_lattice(5, 11, &sec_a, 13, &sec_b, CTX.0, CTX.1).unwrap();
        assert!(!Arc::ptr_eq(&first, &lattice));
        for src in 0..5 {
            for dst in 0..5 {
                assert_eq!(first.transfers(src, dst), lattice.transfers(src, dst));
            }
        }
    }

    #[test]
    fn execution_context_is_part_of_the_key() {
        // Same build parameters under different (mode, transport)
        // contexts must be distinct entries: an A/B run switching
        // executors can never be served a plan warmed for the other
        // configuration.
        let sec_a = RegularSection::new(9, 1209, 24).unwrap();
        let sec_b = RegularSection::new(1, 1201, 24).unwrap();
        let base = schedule(3, 7, &sec_a, 9, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        let other_kind = schedule(
            3,
            7,
            &sec_a,
            9,
            &sec_b,
            Method::Lattice,
            ExecMode::Batched,
            TransportKind::Shm,
        )
        .unwrap();
        let other_mode = schedule(
            3,
            7,
            &sec_a,
            9,
            &sec_b,
            Method::Lattice,
            ExecMode::PerElement,
            TransportKind::Mpsc,
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_kind));
        assert!(!Arc::ptr_eq(&base, &other_mode));
        // The schedule *data* is context-independent.
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(base.transfers(src, dst), other_kind.transfers(src, dst));
                assert_eq!(base.transfers(src, dst), other_mode.transfers(src, dst));
            }
        }
    }

    #[test]
    fn plans_hit_after_miss() {
        let sec = RegularSection::new(1, 961, 17).unwrap();
        let before = stats();
        let first = plans(6, 9, &sec, Method::Lattice).unwrap();
        let second = plans(6, 9, &sec, Method::Lattice).unwrap();
        let after = stats();
        assert!(Arc::ptr_eq(&first, &second));
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }

    #[test]
    fn occupancy_stays_bounded() {
        let cap = capacity();
        for i in 0..(cap as i64 + 16) {
            let sec = RegularSection::new(i, i + 400, 401).unwrap();
            let _ = plans(2, 3, &sec, Method::Lattice).unwrap();
        }
        assert!(stats().entries <= cap);
        // Eviction is shard-local but the bound is global: no shard
        // exceeds its slice of the capacity.
        let per_shard_cap = cap / shards();
        for n in shard_entries() {
            assert!(n <= per_shard_cap, "{n} > {per_shard_cap}");
        }
    }

    #[test]
    fn parse_cap_resolves_env_values() {
        assert_eq!(parse_cap(None), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("17")), 17);
        assert_eq!(parse_cap(Some(" 64 ")), 64);
        assert_eq!(parse_cap(Some("0")), 0);
        assert_eq!(parse_cap(Some("banana")), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("-3")), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("")), DEFAULT_CAPACITY);
    }

    #[test]
    fn parse_shards_resolves_env_values() {
        assert_eq!(parse_shards(Some("1")), 1);
        assert_eq!(parse_shards(Some("8")), 8);
        assert_eq!(parse_shards(Some("6")), 8, "rounded up to a power of two");
        assert_eq!(parse_shards(Some("0")), default_shards());
        assert_eq!(parse_shards(Some("banana")), default_shards());
        assert_eq!(parse_shards(None), default_shards());
        assert!(default_shards().is_power_of_two());
        assert!(default_shards() >= 4);
    }

    /// A tiny explicit store for semantics tests: `u64` keys, values
    /// tagging which build produced them.
    fn probe(store: &ShardedCache<u64, Arc<u64>>, key: u64) -> LookupOutcome<Arc<u64>> {
        store
            .get_or_try_build(key, || Ok::<_, ()>(Arc::new(key * 10)))
            .unwrap()
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(0, 4);
        let first = probe(&store, 7).value;
        let second = probe(&store, 7).value;
        // Every lookup builds: distinct allocations, nothing retained.
        assert!(!Arc::ptr_eq(&first, &second));
        let st = store.stats();
        assert_eq!(st.entries, 0);
        assert_eq!(st.capacity, 0);
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, 2);
    }

    #[test]
    fn single_shard_reproduces_single_store_lru() {
        // `BCAG_CACHE_SHARDS=1` semantics: one lock domain, one global
        // LRU order over the whole capacity.
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(2, 1);
        assert_eq!(store.shards(), 1);
        let first = probe(&store, 0).value;
        let _ = probe(&store, 1);
        // Touch key 0 so key 1 is the LRU victim when key 2 arrives.
        let again = probe(&store, 0);
        assert!(again.hit);
        assert!(Arc::ptr_eq(&first, &again.value));
        let out = probe(&store, 2);
        assert!(out.evicted);
        assert!(store.contains(&0));
        assert!(!store.contains(&1));
        assert!(store.contains(&2));
    }

    #[test]
    fn eviction_accounting_matches_displacements() {
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(2, 1);
        for key in 0..5 {
            let _ = probe(&store, key);
        }
        // 5 distinct keys through a 2-entry store: the first two fill it,
        // the next three each displace one LRU victim.
        let st = store.stats();
        assert_eq!(st.evictions, 3);
        assert_eq!(st.entries, 2);
        assert_eq!(st.capacity, 2);
        assert_eq!(st.misses, 5);
        assert_eq!(st.hits, 0);
        assert_eq!(st.hit_rate(), 0.0);
        // A hit displaces nothing.
        let out = probe(&store, 4);
        assert!(out.hit && !out.evicted);
        let st = store.stats();
        assert_eq!(st.evictions, 3);
        assert_eq!(st.hits, 1);
        assert!(st.hit_rate() > 0.0);
    }

    #[test]
    fn sharded_store_bounds_every_shard() {
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(16, 4);
        assert_eq!(store.shards(), 4);
        assert_eq!(store.capacity(), 16);
        for key in 0..200 {
            let _ = probe(&store, key);
        }
        let st = store.stats();
        assert!(st.entries <= 16);
        assert_eq!(st.misses, 200);
        assert_eq!(st.misses, st.evictions + st.entries as u64);
        for n in store.shard_entries() {
            assert!(n <= 4, "shard over its slice: {n}");
        }
    }

    #[test]
    fn clear_empties_but_keeps_totals() {
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(8, 2);
        for key in 0..6 {
            let _ = probe(&store, key);
        }
        let before = store.stats();
        assert!(before.entries > 0);
        store.clear();
        let after = store.stats();
        assert_eq!(after.entries, 0);
        assert!(store.shard_entries().iter().all(|&n| n == 0));
        assert_eq!(after.misses, before.misses);
        // Old keys rebuild after a clear (fresh allocations).
        let rebuilt = probe(&store, 0);
        assert!(!rebuilt.hit);
    }

    #[test]
    fn single_flight_builds_once_per_key() {
        use std::sync::atomic::AtomicU64;
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(64, 4);
        let builds = AtomicU64::new(0);
        let gate = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    gate.wait();
                    let out = store
                        .get_or_try_build(42u64, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the miss window so stragglers join
                            // the flight instead of hitting.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok::<_, ()>(Arc::new(420))
                        })
                        .unwrap();
                    assert_eq!(*out.value, 420);
                });
            }
        });
        assert_eq!(
            builds.load(Ordering::Relaxed),
            1,
            "concurrent missers must share one build"
        );
        let st = store.stats();
        assert_eq!(st.hits + st.misses, 8, "every lookup counted exactly once");
    }

    #[test]
    fn failed_builds_are_not_cached_and_release_waiters() {
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(8, 2);
        let attempts = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let r = store.get_or_try_build(9u64, || {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Err::<Arc<u64>, &str>("build exploded")
                    });
                    assert!(r.is_err());
                });
            }
        });
        // Every caller eventually got an error; nothing was retained.
        assert!(!store.contains(&9));
        assert!(attempts.load(Ordering::Relaxed) >= 1);
        // The key still builds fine afterwards.
        let ok = probe(&store, 9);
        assert!(!ok.hit);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let good = RegularSection::new(0, 9, 1).unwrap();
        let bad = RegularSection::new(0, 9, 2).unwrap(); // nonconforming
        assert!(schedule(2, 4, &good, 4, &bad, Method::Lattice, CTX.0, CTX.1).is_err());
        assert!(schedule(2, 4, &good, 4, &bad, Method::Lattice, CTX.0, CTX.1).is_err());
    }

    #[test]
    fn backward_shift_deletion_keeps_probe_chains_intact() {
        // Force collisions: capacity 8 in one shard (16 slots), keys
        // chosen freely — after evicting interior entries, every
        // survivor must still be findable.
        let store: ShardedCache<u64, Arc<u64>> = ShardedCache::new(8, 1);
        for key in 0..64 {
            let _ = probe(&store, key);
            // Every resident key the stats claim must actually probe.
            let st = store.stats();
            assert_eq!(st.entries as u64 + st.evictions, st.misses);
        }
        let mut resident = 0;
        for key in 0..64 {
            if store.contains(&key) {
                resident += 1;
                assert!(probe(&store, key).hit, "resident key {key} must hit");
            }
        }
        assert_eq!(resident, 8);
    }
}
