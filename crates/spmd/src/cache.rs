//! Process-wide schedule/plan cache.
//!
//! An interpreter (or any driver) that executes the same statement shape
//! repeatedly — a loop over identical sections — pays the full
//! `CommSchedule::build` / [`plan_section`] cost every iteration even
//! though the result depends only on `(p, k, section)` parameters, never
//! on array contents. This module memoizes both products behind a
//! capacity-bounded, LRU-evicting store: plain `Vec`-backed (zero
//! dependencies, linear scan — the capacity is small enough that a scan
//! beats a hash map's constant factors here), keyed by the exact build
//! parameters, returning shared [`Arc`] handles. Capacity defaults to
//! [`DEFAULT_CAPACITY`] and can be overridden with the
//! `BCAG_SCHED_CACHE_CAP` env var (`0` disables caching entirely; every
//! lookup builds).
//!
//! Every lookup records a `schedule_cache_hits` or `schedule_cache_misses`
//! counter via [`bcag_trace`], so a `--trace` run shows exactly how much
//! rebuild work the cache absorbed.

use std::sync::{Arc, Mutex, OnceLock};

use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::assign::{plan_section, NodePlan};
use crate::comm::{CommSchedule, ExecMode};
use crate::transport::TransportKind;

/// Default maximum number of cached entries; least-recently-used entries
/// are evicted beyond this. Override with `BCAG_SCHED_CACHE_CAP`.
pub const DEFAULT_CAPACITY: usize = 128;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Key {
    /// A communication schedule. `method` is the pattern method of
    /// [`CommSchedule::build`], or `None` for the closed-form
    /// [`CommSchedule::build_lattice`] (a different algorithm, cached
    /// under a different key even though the results agree).
    Schedule {
        p: i64,
        k_a: i64,
        sec_a: (i64, i64, i64),
        k_b: i64,
        sec_b: (i64, i64, i64),
        method: Option<Method>,
        /// The execution context the schedule will run under. The
        /// schedule *data* is context-independent, but keying on the
        /// (exec mode, transport) pair guarantees an A/B run switching
        /// executors mid-process can never observe a plan warmed for —
        /// and potentially specialized to — the other configuration.
        exec: (ExecMode, TransportKind),
    },
    /// A per-node owner-computes plan set from [`plan_section`].
    Plans {
        p: i64,
        k: i64,
        sec: (i64, i64, i64),
        method: Method,
    },
}

#[derive(Clone)]
enum Value {
    Schedule(Arc<CommSchedule>),
    Plans(Arc<Vec<NodePlan>>),
}

struct Entry {
    key: Key,
    value: Value,
    stamp: u64,
}

struct Store {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Store {
    fn with_capacity(capacity: usize) -> Store {
        Store {
            entries: Vec::new(),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        let cap = parse_cap(std::env::var("BCAG_SCHED_CACHE_CAP").ok().as_deref());
        Mutex::new(Store::with_capacity(cap))
    })
}

/// Resolves a `BCAG_SCHED_CACHE_CAP` value: unset or unparsable falls
/// back to [`DEFAULT_CAPACITY`]; `0` disables caching.
fn parse_cap(var: Option<&str>) -> usize {
    match var {
        Some(s) => s.trim().parse().unwrap_or(DEFAULT_CAPACITY),
        None => DEFAULT_CAPACITY,
    }
}

/// The store's effective capacity (after the env override).
pub fn capacity() -> usize {
    store().lock().unwrap().capacity
}

/// Cache effectiveness counters (process lifetime totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum entries the store retains (0 = caching disabled).
    pub capacity: usize,
    /// LRU entries displaced to make room for new ones.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Returns the lifetime hit/miss/eviction totals and current occupancy.
pub fn stats() -> CacheStats {
    stats_of(store())
}

fn stats_of(store: &Mutex<Store>) -> CacheStats {
    let s = store.lock().unwrap();
    CacheStats {
        hits: s.hits,
        misses: s.misses,
        entries: s.entries.len(),
        capacity: s.capacity,
        evictions: s.evictions,
    }
}

/// Empties the cache (stats totals are kept). Intended for tests and
/// memory-sensitive embedders.
pub fn clear() {
    store().lock().unwrap().entries.clear();
}

fn sec_key(sec: &RegularSection) -> (i64, i64, i64) {
    (sec.l, sec.u, sec.s)
}

/// Looks up `key`, building (outside the lock) and inserting on a miss.
/// Two threads missing the same key concurrently may both build; the
/// second insert defers to the first, so callers always share one value.
fn get_or_build(key: Key, build_value: impl FnOnce() -> Result<Value>) -> Result<Value> {
    get_or_build_in(store(), key, build_value)
}

/// [`get_or_build`] against an explicit store — testable without the
/// process-global singleton (env-var capacity tests would race).
fn get_or_build_in(
    store: &Mutex<Store>,
    key: Key,
    build_value: impl FnOnce() -> Result<Value>,
) -> Result<Value> {
    {
        let mut s = store.lock().unwrap();
        s.tick += 1;
        let tick = s.tick;
        if let Some(pos) = s.entries.iter().position(|e| e.key == key) {
            s.entries[pos].stamp = tick;
            s.hits += 1;
            let v = s.entries[pos].value.clone();
            let (hits, misses) = (s.hits, s.misses);
            drop(s);
            bcag_trace::count("schedule_cache_hits", 1);
            if bcag_trace::enabled() {
                bcag_trace::gauge("schedule_cache_hit_pct", 100 * hits / (hits + misses));
            }
            return Ok(v);
        }
        s.misses += 1;
    }
    bcag_trace::count("schedule_cache_misses", 1);
    let value = build_value()?;
    let mut s = store.lock().unwrap();
    if s.capacity == 0 {
        // Caching disabled: every lookup builds, nothing is retained.
        return Ok(value);
    }
    s.tick += 1;
    let tick = s.tick;
    if let Some(pos) = s.entries.iter().position(|e| e.key == key) {
        s.entries[pos].stamp = tick;
        return Ok(s.entries[pos].value.clone());
    }
    let mut evicted = false;
    if s.entries.len() >= s.capacity {
        let oldest = s
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("non-empty at capacity");
        s.entries.swap_remove(oldest);
        s.evictions += 1;
        evicted = true;
    }
    s.entries.push(Entry {
        key,
        value: value.clone(),
        stamp: tick,
    });
    let (entries, hits, misses) = (s.entries.len() as u64, s.hits, s.misses);
    drop(s);
    if evicted {
        bcag_trace::count("schedule_cache_evictions", 1);
    }
    if bcag_trace::enabled() {
        bcag_trace::gauge("schedule_cache_entries", entries);
        bcag_trace::gauge(
            "schedule_cache_hit_pct",
            100 * hits / (hits + misses).max(1),
        );
    }
    Ok(value)
}

/// Cached [`CommSchedule::build`], keyed additionally by the execution
/// context (`mode`, `kind`) the caller will run the schedule under.
pub fn schedule(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
    method: Method,
    mode: ExecMode,
    kind: TransportKind,
) -> Result<Arc<CommSchedule>> {
    let key = Key::Schedule {
        p,
        k_a,
        sec_a: sec_key(sec_a),
        k_b,
        sec_b: sec_key(sec_b),
        method: Some(method),
        exec: (mode, kind),
    };
    let v = get_or_build(key, || {
        CommSchedule::build(p, k_a, sec_a, k_b, sec_b, method).map(|s| Value::Schedule(Arc::new(s)))
    })?;
    match v {
        Value::Schedule(s) => Ok(s),
        Value::Plans(_) => unreachable!("schedule key maps to schedule value"),
    }
}

/// Cached [`CommSchedule::build_lattice`], keyed additionally by the
/// execution context (`mode`, `kind`) the caller will run the schedule
/// under.
pub fn schedule_lattice(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
    mode: ExecMode,
    kind: TransportKind,
) -> Result<Arc<CommSchedule>> {
    let key = Key::Schedule {
        p,
        k_a,
        sec_a: sec_key(sec_a),
        k_b,
        sec_b: sec_key(sec_b),
        method: None,
        exec: (mode, kind),
    };
    let v = get_or_build(key, || {
        CommSchedule::build_lattice(p, k_a, sec_a, k_b, sec_b).map(|s| Value::Schedule(Arc::new(s)))
    })?;
    match v {
        Value::Schedule(s) => Ok(s),
        Value::Plans(_) => unreachable!("schedule key maps to schedule value"),
    }
}

/// Cached [`plan_section`].
pub fn plans(p: i64, k: i64, sec: &RegularSection, method: Method) -> Result<Arc<Vec<NodePlan>>> {
    let key = Key::Plans {
        p,
        k,
        sec: sec_key(sec),
        method,
    };
    let v = get_or_build(key, || {
        plan_section(p, k, sec, method).map(|p| Value::Plans(Arc::new(p)))
    })?;
    match v {
        Value::Plans(p) => Ok(p),
        Value::Schedule(_) => unreachable!("plans key maps to plans value"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CTX: (ExecMode, TransportKind) = (ExecMode::Batched, TransportKind::Mpsc);

    #[test]
    fn schedule_hits_share_one_arc() {
        // A key shape deliberately unlike anything else in the test suite.
        let sec_a = RegularSection::new(3, 1203, 25).unwrap();
        let sec_b = RegularSection::new(7, 1207, 25).unwrap();
        let first = schedule(5, 11, &sec_a, 13, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        let second = schedule(5, 11, &sec_a, 13, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // The lattice builder is a distinct key even for identical params.
        let lattice = schedule_lattice(5, 11, &sec_a, 13, &sec_b, CTX.0, CTX.1).unwrap();
        assert!(!Arc::ptr_eq(&first, &lattice));
        for src in 0..5 {
            for dst in 0..5 {
                assert_eq!(first.transfers(src, dst), lattice.transfers(src, dst));
            }
        }
    }

    #[test]
    fn execution_context_is_part_of_the_key() {
        // Same build parameters under different (mode, transport)
        // contexts must be distinct entries: an A/B run switching
        // executors can never be served a plan warmed for the other
        // configuration.
        let sec_a = RegularSection::new(9, 1209, 24).unwrap();
        let sec_b = RegularSection::new(1, 1201, 24).unwrap();
        let base = schedule(3, 7, &sec_a, 9, &sec_b, Method::Lattice, CTX.0, CTX.1).unwrap();
        let other_kind = schedule(
            3,
            7,
            &sec_a,
            9,
            &sec_b,
            Method::Lattice,
            ExecMode::Batched,
            TransportKind::Shm,
        )
        .unwrap();
        let other_mode = schedule(
            3,
            7,
            &sec_a,
            9,
            &sec_b,
            Method::Lattice,
            ExecMode::PerElement,
            TransportKind::Mpsc,
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&base, &other_kind));
        assert!(!Arc::ptr_eq(&base, &other_mode));
        // The schedule *data* is context-independent.
        for src in 0..3 {
            for dst in 0..3 {
                assert_eq!(base.transfers(src, dst), other_kind.transfers(src, dst));
                assert_eq!(base.transfers(src, dst), other_mode.transfers(src, dst));
            }
        }
    }

    #[test]
    fn plans_hit_after_miss() {
        let sec = RegularSection::new(1, 961, 17).unwrap();
        let before = stats();
        let first = plans(6, 9, &sec, Method::Lattice).unwrap();
        let second = plans(6, 9, &sec, Method::Lattice).unwrap();
        let after = stats();
        assert!(Arc::ptr_eq(&first, &second));
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }

    #[test]
    fn occupancy_stays_bounded() {
        let cap = capacity();
        for i in 0..(cap as i64 + 16) {
            let sec = RegularSection::new(i, i + 400, 401).unwrap();
            let _ = plans(2, 3, &sec, Method::Lattice).unwrap();
        }
        assert!(stats().entries <= cap);
    }

    #[test]
    fn parse_cap_resolves_env_values() {
        assert_eq!(parse_cap(None), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("17")), 17);
        assert_eq!(parse_cap(Some(" 64 ")), 64);
        assert_eq!(parse_cap(Some("0")), 0);
        assert_eq!(parse_cap(Some("banana")), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("-3")), DEFAULT_CAPACITY);
        assert_eq!(parse_cap(Some("")), DEFAULT_CAPACITY);
    }

    fn probe_plans(store: &Mutex<Store>, sec: &RegularSection) -> Arc<Vec<NodePlan>> {
        let key = Key::Plans {
            p: 2,
            k: 3,
            sec: sec_key(sec),
            method: Method::Lattice,
        };
        match get_or_build_in(store, key, || {
            plan_section(2, 3, sec, Method::Lattice).map(|p| Value::Plans(Arc::new(p)))
        })
        .unwrap()
        {
            Value::Plans(p) => p,
            Value::Schedule(_) => unreachable!(),
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let store = Mutex::new(Store::with_capacity(0));
        let sec = RegularSection::new(0, 90, 9).unwrap();
        let first = probe_plans(&store, &sec);
        let second = probe_plans(&store, &sec);
        // Every lookup builds: distinct allocations, nothing retained.
        assert!(!Arc::ptr_eq(&first, &second));
        let s = store.lock().unwrap();
        assert_eq!(s.entries.len(), 0);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn small_capacity_evicts_lru() {
        let store = Mutex::new(Store::with_capacity(2));
        let secs: Vec<RegularSection> = (0..3)
            .map(|i| RegularSection::new(i, i + 90, 9).unwrap())
            .collect();
        let first = probe_plans(&store, &secs[0]);
        let _ = probe_plans(&store, &secs[1]);
        // Touch sec 0 so sec 1 is the LRU victim when sec 2 arrives.
        let again = probe_plans(&store, &secs[0]);
        assert!(Arc::ptr_eq(&first, &again));
        let _ = probe_plans(&store, &secs[2]);
        let s = store.lock().unwrap();
        assert_eq!(s.entries.len(), 2);
        assert!(s.entries.iter().any(|e| matches!(
            &e.key,
            Key::Plans { sec, .. } if *sec == sec_key(&secs[0])
        )));
        assert!(s.entries.iter().any(|e| matches!(
            &e.key,
            Key::Plans { sec, .. } if *sec == sec_key(&secs[2])
        )));
    }

    #[test]
    fn eviction_accounting_matches_displacements() {
        let store = Mutex::new(Store::with_capacity(2));
        let secs: Vec<RegularSection> = (0..5)
            .map(|i| RegularSection::new(i, i + 90, 9).unwrap())
            .collect();
        for sec in &secs {
            let _ = probe_plans(&store, sec);
        }
        // 5 distinct keys through a 2-entry store: the first two fill it,
        // the next three each displace one LRU victim.
        let st = stats_of(&store);
        assert_eq!(st.evictions, 3);
        assert_eq!(st.entries, 2);
        assert_eq!(st.capacity, 2);
        assert_eq!(st.misses, 5);
        assert_eq!(st.hits, 0);
        assert_eq!(st.hit_rate(), 0.0);
        // A hit displaces nothing.
        let _ = probe_plans(&store, &secs[4]);
        let st = stats_of(&store);
        assert_eq!(st.evictions, 3);
        assert_eq!(st.hits, 1);
        assert!(st.hit_rate() > 0.0);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let good = RegularSection::new(0, 9, 1).unwrap();
        let bad = RegularSection::new(0, 9, 2).unwrap(); // nonconforming
        assert!(schedule(2, 4, &good, 4, &bad, Method::Lattice, CTX.0, CTX.1).is_err());
        assert!(schedule(2, 4, &good, 4, &bad, Method::Lattice, CTX.0, CTX.1).is_err());
    }
}
