//! Workload statistics for sections over block-cyclic layouts.
//!
//! Compiler writers and library designers pick `k` to balance load against
//! communication (the tension behind Dongarra et al.'s block-scattered
//! advocacy in the paper's introduction). All the figures here come from
//! the closed forms the access machinery provides — no element scanning:
//! per-processor section counts from [`bcag_core::start::count_owned`],
//! message volumes from [`crate::comm::CommSchedule`]. The trace-derived
//! cross-checks below work in both launch modes: resident pool workers
//! carry persistent `node-<m>` lanes whose counters sum exactly like the
//! per-launch lanes of scoped threads.

use bcag_core::error::Result;
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::start::count_owned;

use crate::comm::{CommSchedule, ExecMode};
use crate::fuse::{self, FuseCensus};
use crate::transport;

/// Load distribution of a section over a `(p, k)` layout.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Owned section elements per processor.
    pub per_proc: Vec<i64>,
    /// Total section elements.
    pub total: i64,
    /// Maximum per-processor count.
    pub max: i64,
    /// Minimum per-processor count.
    pub min: i64,
    /// `max / (total / p)`: 1.0 is perfect balance; the parallel-time
    /// slowdown factor relative to ideal.
    pub imbalance: f64,
}

/// Computes the per-processor load of `section` under `(p, k)`, in closed
/// form (one `O(k)` pass per processor).
pub fn load_stats(p: i64, k: i64, section: &RegularSection) -> Result<LoadStats> {
    let norm = section.normalized();
    let per_proc: Vec<i64> = if norm.count == 0 {
        vec![0; p as usize]
    } else {
        let problem = Problem::new(p, k, norm.lo, norm.step)?;
        (0..p)
            .map(|m| count_owned(&problem, m, norm.hi))
            .collect::<Result<_>>()?
    };
    let total: i64 = per_proc.iter().sum();
    let max = per_proc.iter().copied().max().unwrap_or(0);
    let min = per_proc.iter().copied().min().unwrap_or(0);
    let ideal = total as f64 / p as f64;
    let imbalance = if total == 0 { 1.0 } else { max as f64 / ideal };
    Ok(LoadStats {
        per_proc,
        total,
        max,
        min,
        imbalance,
    })
}

/// Communication summary of an assignment `A(sec_a) = B(sec_b)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    /// Elements staying on their processor.
    pub local_elements: usize,
    /// Elements crossing processors.
    pub nonlocal_elements: usize,
    /// Number of nonempty (src ≠ dst) messages.
    pub messages: usize,
    /// Largest single message (elements).
    pub max_message: usize,
}

/// Summarizes the communication of an assignment from the closed-form
/// message matrix — counts only, no transfer list is ever materialized,
/// so this works at any section size.
pub fn comm_stats(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
) -> Result<CommStats> {
    let matrix = CommSchedule::message_matrix(p, k_a, sec_a, k_b, sec_b)?;
    let mut local = 0i64;
    let mut nonlocal = 0i64;
    let mut messages = 0usize;
    let mut max_message = 0i64;
    for (src, dst, n) in matrix.entries() {
        if src == dst {
            local += n;
        } else {
            nonlocal += n;
            if n > 0 {
                messages += 1;
                max_message = max_message.max(n);
            }
        }
    }
    Ok(CommStats {
        local_elements: local as usize,
        nonlocal_elements: nonlocal as usize,
        messages,
        max_message: max_message as usize,
    })
}

/// Per-node owned-element counts observed in a collected trace: the
/// `elements_packed` totals of the `node-<m>` lanes, padded with zeros to
/// `p` entries (a node that owned nothing may never have registered a
/// lane). Running an instrumented per-node [`crate::pack::pack`] under
/// [`bcag_trace::capture`] and passing the trace here cross-checks the
/// closed-form [`LoadStats::per_proc`] against what the node programs
/// actually enumerated.
pub fn per_node_packed_from_trace(trace: &bcag_trace::Trace, p: i64) -> Vec<i64> {
    let mut out: Vec<i64> = trace
        .per_node_counter("elements_packed")
        .into_iter()
        .map(|v| v as i64)
        .collect();
    out.resize(p as usize, 0);
    out
}

/// Structure census of the fused per-node epoch a statement shape
/// compiles to: how many send, receive, local-move and apply segments
/// the compiled program executes per epoch. The analytics counterpart
/// of [`comm_stats`] for the fused path — a shape whose census shows
/// many `Wide` exchanges and few self-moves is communication-bound no
/// matter how fast the kernels run.
///
/// The census is a property of the statement *shape* alone (element
/// type only selects kernels, not structure), so this compiles a
/// throwaway `f64` program — schedules still come from the shared
/// cache, but nothing is installed in the fused-program cache.
pub fn fuse_census(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    ops: &[(i64, RegularSection)],
) -> Result<FuseCensus> {
    let program = fuse::compile::<f64>(
        p,
        k_a,
        sec_a,
        ops,
        ExecMode::Batched,
        transport::default_transport(),
        // Census under the current tune regime, so `bcag stats` shows
        // the blocking the fused path would actually run with.
        fuse::epoch_block_elems::<f64>(sec_a),
    )?;
    Ok(program.census())
}

/// Sweeps block sizes and reports `(k, imbalance, nonlocal fraction)` for a
/// same-layout copy shifted by `shift` — the classic "choose k" tradeoff
/// table: small `k` balances load; large `k` keeps shifted neighbors local.
pub fn block_size_tradeoff(p: i64, ks: &[i64], n: i64, shift: i64) -> Result<Vec<(i64, f64, f64)>> {
    let mut out = Vec::with_capacity(ks.len());
    let sec_a = RegularSection::new(0, n - 1 - shift, 1)?;
    let sec_b = RegularSection::new(shift, n - 1, 1)?;
    for &k in ks {
        let load = load_stats(p, k, &sec_a)?;
        let comm = comm_stats(p, k, &sec_a, k, &sec_b)?;
        let nonlocal_frac =
            comm.nonlocal_elements as f64 / (comm.local_elements + comm.nonlocal_elements) as f64;
        out.push((k, load.imbalance, nonlocal_frac));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_stats_match_enumeration() {
        let sec = RegularSection::new(3, 977, 7).unwrap();
        let stats = load_stats(8, 16, &sec).unwrap();
        let lay = bcag_core::Layout::from_raw(8, 16);
        for m in 0..8 {
            let expect = sec.iter().filter(|&g| lay.owner(g) == m).count() as i64;
            assert_eq!(stats.per_proc[m as usize], expect, "m={m}");
        }
        assert_eq!(stats.total, sec.count());
        assert!(stats.imbalance >= 1.0);
    }

    #[test]
    fn dense_unit_stride_is_balanced_for_small_k() {
        // n a multiple of pk: perfect balance.
        let sec = RegularSection::new(0, 255, 1).unwrap();
        let stats = load_stats(4, 8, &sec).unwrap();
        assert_eq!(stats.max, stats.min);
        assert!((stats.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn block_distribution_concentrates_strided_sections() {
        // Stride pk with block ~ n/p: all accesses on processor 0.
        let n = 256i64;
        let sec = RegularSection::new(0, 63, 1).unwrap(); // first quarter
        let stats = load_stats(4, 64, &sec).unwrap(); // block distribution
        assert_eq!(stats.per_proc, vec![64, 0, 0, 0]);
        assert_eq!(stats.imbalance, 4.0);
        let _ = n;
    }

    #[test]
    fn comm_stats_shift() {
        // Shift by exactly k: every element moves one processor over.
        let sec_a = RegularSection::new(0, 91, 1).unwrap();
        let sec_b = RegularSection::new(8, 99, 1).unwrap();
        let stats = comm_stats(4, 8, &sec_a, 8, &sec_b).unwrap();
        assert_eq!(stats.local_elements, 0);
        assert_eq!(stats.nonlocal_elements, 92);
        // Identity copy: all local.
        let same = comm_stats(4, 8, &sec_a, 8, &sec_a).unwrap();
        assert_eq!(same.nonlocal_elements, 0);
        assert_eq!(same.messages, 0);
    }

    #[test]
    fn tradeoff_trends() {
        // Shifted copy: nonlocal fraction decreases as k grows.
        let rows = block_size_tradeoff(4, &[1, 4, 16, 64], 1024, 1).unwrap();
        let fracs: Vec<f64> = rows.iter().map(|r| r.2).collect();
        assert!(fracs.windows(2).all(|w| w[0] >= w[1]), "{fracs:?}");
        // k = 1: every shifted element crosses; k = 64: only block edges.
        assert!(fracs[0] > 0.99);
        assert!(fracs[3] < 0.05);
    }

    #[test]
    fn fuse_census_agrees_with_comm_stats() {
        // Shift by exactly k: every element crosses one processor, so
        // the fused program's send/recv plan counts equal the message
        // matrix's nonempty-pair count.
        let sec_a = RegularSection::new(0, 91, 1).unwrap();
        let sec_b = RegularSection::new(8, 99, 1).unwrap();
        let comm = comm_stats(4, 8, &sec_a, 8, &sec_b).unwrap();
        let census = fuse_census(4, 8, &sec_a, &[(8, sec_b)]).unwrap();
        assert_eq!(census.sends, comm.messages);
        assert_eq!(census.recvs, comm.messages);
        assert!(census.apply_segments > 0, "{census:?}");
        // Identity copy: all traffic is self-moves.
        let same = fuse_census(4, 8, &sec_a, &[(8, sec_a)]).unwrap();
        assert_eq!(same.sends, 0);
        assert!(same.self_moves > 0, "{same:?}");
    }

    #[test]
    fn empty_section() {
        let sec = RegularSection::new(10, 5, 1).unwrap();
        let stats = load_stats(4, 8, &sec).unwrap();
        assert_eq!(stats.total, 0);
        assert_eq!(stats.imbalance, 1.0);
    }
}
