//! HPF shift intrinsics: `CSHIFT` and `EOSHIFT`.
//!
//! Nearest-neighbor communication is the bread and butter of data-parallel
//! stencils; HPF exposes it as whole-array circular (`CSHIFT`) and
//! end-off (`EOSHIFT`) shifts. Both reduce to one or two regular-section
//! assignments, so the communication sets come straight from the
//! access-sequence machinery ([`crate::comm`]).

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::comm::{assign_array, PackValue};
use crate::darray::DistArray;

/// Circular shift: returns `A` with `A(i) = B((i + shift) mod n)`.
/// Positive `shift` moves elements toward lower indices (HPF convention).
pub fn cshift<T: PackValue>(b: &DistArray<T>, shift: i64) -> Result<DistArray<T>> {
    let n = b.len();
    if n == 0 {
        return Ok(b.clone());
    }
    let sh = shift.rem_euclid(n);
    let mut a = b.clone();
    if sh == 0 {
        return Ok(a);
    }
    // A(0 : n-1-sh) = B(sh : n-1)
    let dst_main = RegularSection::new(0, n - 1 - sh, 1)?;
    let src_main = RegularSection::new(sh, n - 1, 1)?;
    assign_array(&mut a, &dst_main, b, &src_main, Method::Lattice)?;
    // A(n-sh : n-1) = B(0 : sh-1)
    let dst_wrap = RegularSection::new(n - sh, n - 1, 1)?;
    let src_wrap = RegularSection::new(0, sh - 1, 1)?;
    assign_array(&mut a, &dst_wrap, b, &src_wrap, Method::Lattice)?;
    Ok(a)
}

/// End-off shift: like [`cshift`] but vacated positions take `boundary`.
pub fn eoshift<T: PackValue>(b: &DistArray<T>, shift: i64, boundary: T) -> Result<DistArray<T>> {
    let n = b.len();
    if n == 0 {
        return Ok(b.clone());
    }
    if shift.abs() >= n {
        let mut a = b.clone();
        for i in 0..n {
            a.set(i, boundary.clone())?;
        }
        return Ok(a);
    }
    let mut a = b.clone();
    if shift == 0 {
        return Ok(a);
    }
    if shift > 0 {
        let dst = RegularSection::new(0, n - 1 - shift, 1)?;
        let src = RegularSection::new(shift, n - 1, 1)?;
        assign_array(&mut a, &dst, b, &src, Method::Lattice)?;
        for i in n - shift..n {
            a.set(i, boundary.clone())?;
        }
    } else {
        let sh = -shift;
        let dst = RegularSection::new(sh, n - 1, 1)?;
        let src = RegularSection::new(0, n - 1 - sh, 1)?;
        assign_array(&mut a, &dst, b, &src, Method::Lattice)?;
        for i in 0..sh {
            a.set(i, boundary.clone())?;
        }
    }
    Ok(a)
}

/// Validates a shift request against an array (exposed for the runtime's
/// statement checking).
pub fn check_shift(n: i64, _shift: i64) -> Result<()> {
    if n < 0 {
        return Err(BcagError::Precondition("array extent must be nonnegative"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_cshift(v: &[i64], shift: i64) -> Vec<i64> {
        let n = v.len() as i64;
        (0..n)
            .map(|i| v[((i + shift).rem_euclid(n)) as usize])
            .collect()
    }

    #[test]
    fn cshift_matches_sequential() {
        let data: Vec<i64> = (0..100).map(|i| i * i).collect();
        let b = DistArray::from_global(4, 8, &data).unwrap();
        for shift in [-150i64, -7, -1, 0, 1, 5, 8, 32, 99, 100, 137] {
            let a = cshift(&b, shift).unwrap();
            assert_eq!(a.to_global(), seq_cshift(&data, shift), "shift={shift}");
        }
    }

    #[test]
    fn eoshift_matches_sequential() {
        let data: Vec<i64> = (0..60).collect();
        let b = DistArray::from_global(4, 3, &data).unwrap();
        for shift in [-70i64, -5, -1, 0, 1, 4, 59, 60, 70] {
            let a = eoshift(&b, shift, -1).unwrap();
            let n = data.len() as i64;
            let expect: Vec<i64> = (0..n)
                .map(|i| {
                    let src = i + shift;
                    if (0..n).contains(&src) {
                        data[src as usize]
                    } else {
                        -1
                    }
                })
                .collect();
            assert_eq!(a.to_global(), expect, "shift={shift}");
        }
    }

    #[test]
    fn empty_arrays() {
        let b: DistArray<i64> = DistArray::empty(2, 4).unwrap();
        assert!(cshift(&b, 3).unwrap().is_empty());
        assert!(eoshift(&b, 3, 0).unwrap().is_empty());
    }
}
