//! BLAS-1 style kernels over distributed regular sections.
//!
//! The paper's introduction motivates `cyclic(k)` through "the design of
//! scalable libraries for dense linear algebra computations" (Dongarra,
//! van de Geijn, Walker). These are the level-1 building blocks of such a
//! library, each compiled to the owner-computes traversals this crate
//! provides: the vector kernels touch exactly the owned section elements,
//! enumerated by the lattice algorithm.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::runs::RunPlan;
use bcag_core::section::RegularSection;

use crate::assign::apply_section;
use crate::codeshapes::CodeShape;
use crate::darray::DistArray;
use crate::machine::Machine;
use crate::reduce::reduce_section;

/// `x(section) *= alpha` (SCAL).
pub fn scal(x: &mut DistArray<f64>, section: &RegularSection, alpha: f64) -> Result<()> {
    apply_section(x, section, Method::Lattice, CodeShape::RunLoop, move |v| {
        *v *= alpha
    })
}

/// `local[addr] += alpha * xv[addr]` over the run-coalesced traversal:
/// unit-gap segments become slice zips (vectorizable FMA loops), wide-gap
/// segments tight strided loops. Both axpy paths share this kernel.
fn axpy_runs(local: &mut [f64], xv: &[f64], alpha: f64, runs: &RunPlan) {
    runs.for_each_segment(|seg| {
        let a0 = seg.addr as usize;
        let len = seg.len as usize;
        if seg.gap == 1 {
            for (y, x) in local[a0..a0 + len].iter_mut().zip(&xv[a0..a0 + len]) {
                *y += alpha * x;
            }
        } else {
            let gap = seg.gap as usize;
            let span = (len - 1) * gap + 1;
            let ys = local[a0..a0 + span].iter_mut().step_by(gap);
            let xs = xv[a0..a0 + span].iter().step_by(gap);
            for (y, x) in ys.zip(xs) {
                *y += alpha * x;
            }
        }
    });
}

/// `y(sec_y) += alpha * x(sec_x)` (AXPY). Sections must conform and both
/// arrays must share the machine; layouts may differ (the x operand is
/// gathered).
pub fn axpy(
    alpha: f64,
    x: &DistArray<f64>,
    sec_x: &RegularSection,
    y: &mut DistArray<f64>,
    sec_y: &RegularSection,
) -> Result<()> {
    if sec_x.count() != sec_y.count() {
        return Err(BcagError::Precondition("axpy sections must conform"));
    }
    if x.p() != y.p() {
        return Err(BcagError::Precondition(
            "axpy arrays must share the machine",
        ));
    }
    // Fast path: identical layout and identical sections — pure local work,
    // no staging copy.
    if x.k() == y.k() && sec_x == sec_y {
        let plans = crate::cache::plans(y.p(), y.k(), sec_y, Method::Lattice)?;
        let machine = Machine::new(y.p());
        let x_ref = x;
        machine.run(y.locals_mut(), |m, local| {
            let plan = &plans[m];
            if plan.start.is_none() {
                return;
            }
            axpy_runs(local, x_ref.local(m as i64), alpha, &plan.runs);
        });
        return Ok(());
    }
    // General path: gather x's section to y's owners, then combine. The
    // gathered temporary is y-shaped, with x values at y's addresses.
    let mut staged = y.clone();
    let sched =
        crate::comm::CommSchedule::build(y.p(), y.k(), sec_y, x.k(), sec_x, Method::Lattice)?;
    sched.execute(&mut staged, x)?;
    let plans = crate::cache::plans(y.p(), y.k(), sec_y, Method::Lattice)?;
    let machine = Machine::new(y.p());
    let staged_ref = &staged;
    machine.run(y.locals_mut(), |m, local| {
        let plan = &plans[m];
        if plan.start.is_none() {
            return;
        }
        axpy_runs(local, staged_ref.local(m as i64), alpha, &plan.runs);
    });
    Ok(())
}

/// `sum |x_i|` over the section (ASUM).
pub fn asum(x: &DistArray<f64>, section: &RegularSection) -> Result<f64> {
    reduce_section(
        x,
        section,
        Method::Lattice,
        CodeShape::BranchLoop,
        0.0,
        |acc, &v| acc + v.abs(),
        |a, b| a + b,
    )
}

/// Euclidean norm over the section (NRM2).
pub fn nrm2(x: &DistArray<f64>, section: &RegularSection) -> Result<f64> {
    let ss = reduce_section(
        x,
        section,
        Method::Lattice,
        CodeShape::BranchLoop,
        0.0,
        |acc, &v| acc + v * v,
        |a, b| a + b,
    )?;
    Ok(ss.sqrt())
}

/// Index (section rank) and value of the largest-magnitude element (IAMAX).
/// Returns `None` for an empty section.
pub fn iamax(x: &DistArray<f64>, section: &RegularSection) -> Result<Option<(i64, f64)>> {
    let norm = section.normalized();
    if norm.count == 0 {
        return Ok(None);
    }
    // Gather (|v|, rank) maxima per node, then combine. Reuse the generic
    // reduction with an Option accumulator keyed by section rank.
    let lay = x.layout();
    let problem = bcag_core::params::Problem::new(x.p(), x.k(), norm.lo, norm.step)?;
    let machine = Machine::new(x.p());
    let partials = machine.run_collect(|m| {
        let pat = bcag_core::method::build(&problem, m as i64, Method::Lattice).ok()?;
        let local = x.local(m as i64);
        let mut best: Option<(i64, f64)> = None;
        for acc in pat.iter_to(norm.hi) {
            let v = local[lay.local_addr(acc.global) as usize];
            let rank = (acc.global - norm.lo) / norm.step;
            let better = match best {
                None => true,
                Some((_, bv)) => v.abs() > bv.abs(),
            };
            if better {
                best = Some((rank, v));
            }
        }
        best
    });
    Ok(partials
        .into_iter()
        .flatten()
        .fold(None, |best, (r, v)| match best {
            None => Some((r, v)),
            Some((_, bv)) if v.abs() > bv.abs() => Some((r, v)),
            keep => keep,
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: i64, p: i64, k: i64) -> (Vec<f64>, DistArray<f64>) {
        let data: Vec<f64> = (0..n).map(|i| ((i * 37 % 101) as f64) - 50.0).collect();
        let arr = DistArray::from_global(p, k, &data).unwrap();
        (data, arr)
    }

    #[test]
    fn scal_section_only() {
        let (data, mut x) = fixture(200, 4, 8);
        let sec = RegularSection::new(3, 195, 7).unwrap();
        scal(&mut x, &sec, -2.0).unwrap();
        let g = x.to_global();
        for i in 0..200i64 {
            let expect = if sec.contains(i) {
                -2.0 * data[i as usize]
            } else {
                data[i as usize]
            };
            assert_eq!(g[i as usize], expect, "i={i}");
        }
    }

    #[test]
    fn axpy_same_layout_fast_path() {
        let (xd, x) = fixture(300, 4, 8);
        let (yd, mut y) = fixture(300, 4, 8);
        let sec = RegularSection::new(0, 297, 3).unwrap();
        axpy(2.0, &x, &sec, &mut y, &sec).unwrap();
        let g = y.to_global();
        for i in 0..300i64 {
            let expect = if sec.contains(i) {
                yd[i as usize] + 2.0 * xd[i as usize]
            } else {
                yd[i as usize]
            };
            assert_eq!(g[i as usize], expect, "i={i}");
        }
    }

    #[test]
    fn axpy_mixed_layouts_and_sections() {
        let (xd, x) = fixture(300, 4, 5);
        let (yd, mut y) = fixture(300, 4, 8);
        let sec_x = RegularSection::new(2, 200, 2).unwrap();
        let sec_y = RegularSection::new(0, 297, 3).unwrap();
        axpy(-1.5, &x, &sec_x, &mut y, &sec_y).unwrap();
        let g = y.to_global();
        for t in 0..100i64 {
            let iy = (3 * t) as usize;
            let ix = (2 + 2 * t) as usize;
            assert_eq!(g[iy], yd[iy] - 1.5 * xd[ix], "t={t}");
        }
    }

    #[test]
    fn reductions() {
        let (data, x) = fixture(240, 8, 3);
        let sec = RegularSection::new(1, 235, 6).unwrap();
        let expect_asum: f64 = sec.iter().map(|i| data[i as usize].abs()).sum();
        assert_eq!(asum(&x, &sec).unwrap(), expect_asum);
        let expect_nrm2: f64 = sec
            .iter()
            .map(|i| data[i as usize].powi(2))
            .sum::<f64>()
            .sqrt();
        assert!((nrm2(&x, &sec).unwrap() - expect_nrm2).abs() < 1e-9);
    }

    #[test]
    fn iamax_finds_the_peak() {
        let n = 150i64;
        let mut data: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        data[77] = -1000.0; // peak inside the section below (77 = 2 + 5*15)
        let x = DistArray::from_global(3, 4, &data).unwrap();
        let sec = RegularSection::new(2, 147, 5).unwrap();
        let (rank, v) = iamax(&x, &sec).unwrap().unwrap();
        assert_eq!(v, -1000.0);
        assert_eq!(2 + 5 * rank, 77);
        // Empty section.
        let empty = RegularSection::new(10, 5, 1).unwrap();
        assert_eq!(iamax(&x, &empty).unwrap(), None);
    }
}
