//! Executors: run a [`CommSchedule`] against distributed arrays by
//! message passing over the pluggable transport fabric.
//!
//! Three execution paths share the schedule:
//!
//! * **Batched** (default) — one run-encoded message per non-empty
//!   (src, dst ≠ src) pair over the node's [`crate::transport`] endpoint;
//!   serialized fabrics ship the byte encoding of [`super::wire`], the
//!   in-memory fabrics ship the `(Vec<RunSpan>, Vec<T>)` pair boxed.
//! * **Per-element** — one typed message per element over per-call
//!   channels: the historical pre-batching protocol, preserved for
//!   ablation (the fabric only carries its poison signalling).
//! * **Multi-process** — inside a `bcag spmd` node process the executor
//!   bypasses the thread launch entirely: it sends its own row as real
//!   bytes on the launcher's pipes, shadow-applies every other pair into
//!   its replicated array image, and wire-receives only its own row.
//!
//! Every path charges `transport_bytes_tx`/`transport_bytes_rx` at the
//! canonical [`super::wire::wire_size`] of each message, so the totals
//! are identical across backends; each node counts only its own row, so
//! merged multi-process totals equal in-process totals.

use std::sync::mpsc;

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::darray::DistArray;
use crate::pool::{self, lock_clean, LaunchMode, NodeCtx};
use crate::transport::{self, TransportKind};

use super::schedule::CommSchedule;
use super::wire::{self, PackValue, RunSpan};

/// Selects the data-movement strategy of [`CommSchedule::execute_with`] —
/// an ablation switch in the spirit of [`Method`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One message per non-empty (src, dst ≠ src) pair; same-node transfers
    /// apply directly into the LHS local memory. The default.
    Batched,
    /// One message per element, self-transfers included — the historical
    /// baseline, kept for ablation benchmarks.
    PerElement,
}

impl ExecMode {
    /// Short human-readable name (used by benches).
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Batched => "batched",
            ExecMode::PerElement => "per-element",
        }
    }
}

impl CommSchedule {
    /// Executes `A(sec_a) = B(sec_b)` by message passing with the default
    /// [`ExecMode::Batched`] strategy: every node packs its outgoing
    /// transfers for one destination into a single run-encoded message
    /// (`(Vec<RunSpan>, Vec<T>)` — contiguous and constant-gap stretches
    /// pack and apply as slice copies), sends one message per non-empty
    /// (src, dst ≠ src) pair, applies same-node transfers directly into
    /// its own memory run-by-run, then drains its inbox.
    ///
    /// When tracing is enabled, each node lane (`node-<src>`) records a
    /// `comm.execute.node` span and the communication counters:
    /// `elements_moved` (all outgoing transfers), `elements_nonlocal` and
    /// `messages_sent` (src ≠ dst only), `bytes_packed` (payload bytes
    /// packed out of B's local memory), `transport_bytes_tx`/`_rx` (the
    /// canonical wire size of every message sent/received) and
    /// `recv_wait_ns` (time blocked on the inbox during the receive
    /// phase). Counter totals are identical across execution modes,
    /// launch modes, and transports.
    pub fn execute<T: PackValue>(&self, a: &mut DistArray<T>, b: &DistArray<T>) -> Result<()> {
        self.execute_with(a, b, ExecMode::Batched)
    }

    /// [`CommSchedule::execute`] with an explicit strategy — the ablation
    /// entry point for comparing batched against per-element movement.
    /// Launches with the process-default [`LaunchMode`].
    pub fn execute_with<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
    ) -> Result<()> {
        self.execute_launched(a, b, mode, pool::default_launch())
    }

    /// [`CommSchedule::execute_with`] with an explicit [`LaunchMode`] —
    /// the A/B entry point the pooled-vs-scoped benchmarks and oracle
    /// tests use — on the process-default transport.
    pub fn execute_launched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
        launch: LaunchMode,
    ) -> Result<()> {
        self.execute_transport(a, b, mode, launch, transport::default_transport())
    }

    /// The fully explicit entry point: strategy, launch mode *and*
    /// transport fabric. All other `execute*` methods funnel through
    /// here. Both launch modes and all three fabrics run the identical
    /// node body, so every deterministic counter total is independent of
    /// all three choices by construction.
    ///
    /// Inside a `bcag spmd` node process (a multi-process session is
    /// installed), all of them are overridden: the exchange runs on the
    /// launcher's pipes via [`CommSchedule::execute_transport`]'s
    /// multi-process path instead.
    pub fn execute_transport<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
        launch: LaunchMode,
        kind: TransportKind,
    ) -> Result<()> {
        assert_eq!(a.p(), self.p, "LHS machine size mismatch");
        assert_eq!(b.p(), self.p, "RHS machine size mismatch");
        let _sp = bcag_trace::span("comm.execute");
        let _t = bcag_trace::timed_span("comm_execute_ns");
        if let Some(session) = transport::proc::active() {
            bcag_trace::set_tag("transport", TransportKind::Proc.name());
            return self.execute_proc(a, b, &session);
        }
        bcag_trace::set_tag("transport", kind.name());
        match mode {
            ExecMode::Batched => self.execute_batched(a, b, launch, kind),
            ExecMode::PerElement => self.execute_per_element(a, b, launch, kind),
        }
        Ok(())
    }

    fn execute_batched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
        kind: TransportKind,
    ) {
        let p = self.p as usize;
        // Packed messages travel the pool fabric as type-erased
        // envelopes; their `Vec` buffers come from (and return to) each
        // node's arena, so steady-state statements allocate nothing.
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        pool::launch_with(self.p, launch, kind, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            // Serialized fabrics ship real bytes (when the payload has a
            // wire format); in-memory fabrics ship the pair boxed but are
            // charged the same canonical wire size.
            let use_wire = ctx.serializes() && T::WIRE_BYTES.is_some();
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            // Send phase: pack from B's local memory run-by-run, one
            // message per non-empty destination; the self-row is applied
            // straight into A's local memory, run-by-run. A message is the
            // pair (run spans, packed values): destination addresses cost
            // one span per run instead of one `i64` per element.
            let local_b = b.local(me as i64);
            let mut seg_count = 0u64;
            let mut seg_elems = 0u64;
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                let runs = self.pair_runs(me, dst);
                for r in runs {
                    if r.len >= 2 {
                        seg_count += 1;
                        seg_elems += r.len as u64;
                    }
                }
                if dst == me {
                    T::apply_runs(local_a, local_b, runs);
                    continue;
                }
                if transfers.is_empty() {
                    continue;
                }
                bcag_trace::count("messages_sent", 1);
                bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                let mut spans: Vec<RunSpan> = ctx.take_buf();
                let mut vals: Vec<T> = ctx.take_buf();
                spans.reserve(runs.len());
                vals.reserve(transfers.len());
                for r in runs {
                    spans.push(RunSpan {
                        dst_local: r.dst_local,
                        gap: r.dgap,
                        len: r.len,
                    });
                    T::extend_run(
                        &mut vals,
                        local_b,
                        r.src_local as usize,
                        r.sgap as usize,
                        r.len as usize,
                    );
                }
                if bcag_trace::enabled() {
                    // Per-(src,dst) message-size distribution: the sample
                    // lands on this node's (src) lane; the interned name
                    // carries the destination.
                    let tx = wire::wire_size::<T>(spans.len(), vals.len()) as u64;
                    bcag_trace::count("transport_bytes_tx", tx);
                    bcag_trace::record("msg_bytes", tx);
                    bcag_trace::record(bcag_trace::intern(&format!("msg_bytes_to_{dst}")), tx);
                }
                if use_wire {
                    ctx.send(dst, Box::new(wire::encode(&spans, &vals)));
                    ctx.put_buf(spans);
                    ctx.put_buf(vals);
                } else {
                    ctx.send(dst, Box::new((spans, vals)));
                }
            }
            bcag_core::runs::count_coalesced(seg_count, seg_elems);
            // Receive phase: the schedule is global knowledge (as on a
            // real SPMD machine), so each node knows exactly how many
            // messages are inbound and a counted loop avoids a
            // termination protocol.
            let expected = (0..p)
                .filter(|&s| s != me && !self.pair(s, me).is_empty())
                .count();
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let env = ctx.recv();
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    wait_ns += ns;
                    bcag_trace::record("recv_wait_ns", ns);
                }
                let (spans, vals) = if use_wire {
                    let bytes = *env
                        .downcast::<Vec<u8>>()
                        .expect("wire message payload type");
                    let mut spans: Vec<RunSpan> = ctx.take_buf();
                    let mut vals: Vec<T> = ctx.take_buf();
                    wire::decode_into(&bytes, &mut spans, &mut vals);
                    (spans, vals)
                } else {
                    *env.downcast::<(Vec<RunSpan>, Vec<T>)>()
                        .expect("batched message payload type")
                };
                bcag_trace::count(
                    "transport_bytes_rx",
                    wire::wire_size::<T>(spans.len(), vals.len()) as u64,
                );
                let mut off = 0usize;
                for sp in &spans {
                    let len = sp.len as usize;
                    T::write_run(
                        local_a,
                        sp.dst_local as usize,
                        sp.gap as usize,
                        &vals[off..off + len],
                    );
                    off += len;
                }
                ctx.put_buf(spans);
                ctx.put_buf(vals);
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }

    fn execute_per_element<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
        kind: TransportKind,
    ) {
        let p = self.p as usize;
        // One typed inbox per node, one message per element
        // (self-transfers included) — the pre-batching behavior,
        // preserved for ablation. The channels are per-call: this path
        // measures exactly the historical protocol; only the launch
        // (pooled vs scoped) varies, and the fabric carries nothing but
        // poison signalling.
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| mpsc::channel::<(i64, T)>()).unzip();
        let senders = &senders;
        let inboxes: Vec<std::sync::Mutex<Option<mpsc::Receiver<(i64, T)>>>> = receivers
            .into_iter()
            .map(|r| std::sync::Mutex::new(Some(r)))
            .collect();
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        // Canonical per-element message cost: one destination address
        // plus one payload value.
        let elem_bytes = (8 + T::WIRE_BYTES.unwrap_or(std::mem::size_of::<T>())) as u64;
        pool::launch_with(self.p, launch, kind, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            let inbox = lock_clean(&inboxes[me]).take().expect("one job per node");
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            let local_b = b.local(me as i64);
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                bcag_trace::count("transport_bytes_tx", transfers.len() as u64 * elem_bytes);
                if dst != me && !transfers.is_empty() {
                    bcag_trace::count("messages_sent", 1);
                    bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                }
                for tr in transfers {
                    let v = local_b[tr.src_local as usize].clone();
                    senders[dst]
                        .send((tr.dst_local, v))
                        .expect("receiver alive during send phase");
                }
            }
            let expected: usize = (0..p).map(|s| self.pair(s, me).len()).sum();
            bcag_trace::count("transport_bytes_rx", expected as u64 * elem_bytes);
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let (addr, v) = recv_typed(&inbox, ctx);
                if let Some(t0) = t0 {
                    let ns = t0.elapsed().as_nanos() as u64;
                    wait_ns += ns;
                    bcag_trace::record("recv_wait_ns", ns);
                }
                local_a[addr as usize] = v;
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }

    /// The multi-process path: this process *is* node `me` of the
    /// session; every other node is another OS process reachable only
    /// through the launcher's pipes.
    ///
    /// Each process holds a *replicated* image of both arrays (compute
    /// statements run inline for every node index), so consistency
    /// requires three kinds of application:
    ///
    /// 1. its own row — packed, wire-encoded and really sent (`dst ≠ me`)
    ///    or applied directly (`dst = me`);
    /// 2. every pair with `dst ≠ me` — shadow-applied locally from the
    ///    replicated B image, keeping the other nodes' slices of A
    ///    current in this process;
    /// 3. pairs into `me` from other nodes — received as real bytes from
    ///    the pipes and decoded.
    ///
    /// Only the own-row contributions are counted, so summing the merged
    /// per-process traces reproduces the in-process totals exactly.
    fn execute_proc<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        session: &transport::proc::Session,
    ) -> Result<()> {
        if T::WIRE_BYTES.is_none() {
            return Err(BcagError::Precondition(
                "multi-process execution requires a fixed-width wire payload type",
            ));
        }
        let p = self.p as usize;
        assert_eq!(session.p(), p, "spmd session machine size mismatch");
        let me = session.me();
        let _sp = bcag_trace::span("comm.execute.node");
        // Own row: count, pack, really send.
        let mut seg_count = 0u64;
        let mut seg_elems = 0u64;
        let mut spans: Vec<RunSpan> = Vec::new();
        let mut vals: Vec<T> = Vec::new();
        for dst in 0..p {
            let transfers = self.pair(me, dst);
            bcag_trace::count("elements_moved", transfers.len() as u64);
            bcag_trace::count(
                "bytes_packed",
                (transfers.len() * std::mem::size_of::<T>()) as u64,
            );
            let runs = self.pair_runs(me, dst);
            for r in runs {
                if r.len >= 2 {
                    seg_count += 1;
                    seg_elems += r.len as u64;
                }
            }
            if dst == me || transfers.is_empty() {
                continue;
            }
            bcag_trace::count("messages_sent", 1);
            bcag_trace::count("elements_nonlocal", transfers.len() as u64);
            spans.clear();
            vals.clear();
            let local_b = b.local(me as i64);
            for r in runs {
                spans.push(RunSpan {
                    dst_local: r.dst_local,
                    gap: r.dgap,
                    len: r.len,
                });
                T::extend_run(
                    &mut vals,
                    local_b,
                    r.src_local as usize,
                    r.sgap as usize,
                    r.len as usize,
                );
            }
            let bytes = wire::encode(&spans, &vals);
            if bcag_trace::enabled() {
                bcag_trace::count("transport_bytes_tx", bytes.len() as u64);
                bcag_trace::record("msg_bytes", bytes.len() as u64);
                bcag_trace::record(
                    bcag_trace::intern(&format!("msg_bytes_to_{dst}")),
                    bytes.len() as u64,
                );
            }
            session.send_data(dst, bytes);
        }
        bcag_core::runs::count_coalesced(seg_count, seg_elems);
        // Shadow phase: every pair landing on another node's slice of A,
        // including this node's own sends, applied from the replicated
        // B image (uncounted — the owning process counts them).
        let locals_a = a.locals_mut();
        for src in 0..p {
            let local_b = b.local(src as i64);
            for (dst, local_a) in locals_a.iter_mut().enumerate() {
                if dst == me && src != me {
                    continue; // inbound for real, below
                }
                T::apply_runs(local_a, local_b, self.pair_runs(src, dst));
            }
        }
        // Receive phase: real bytes from the pipes, demultiplexed by
        // source, in increasing source order — deterministic because the
        // router preserves per-source FIFO.
        let local_a = &mut locals_a[me];
        let mut wait_ns = 0u64;
        for src in (0..p).filter(|&s| s != me && !self.pair(s, me).is_empty()) {
            let t0 = bcag_trace::enabled().then(std::time::Instant::now);
            let bytes = session.recv_from(src);
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                wait_ns += ns;
                bcag_trace::record("recv_wait_ns", ns);
            }
            bcag_trace::count("transport_bytes_rx", bytes.len() as u64);
            spans.clear();
            vals.clear();
            wire::decode_into(&bytes, &mut spans, &mut vals);
            let mut off = 0usize;
            for sp in &spans {
                let len = sp.len as usize;
                T::write_run(
                    local_a,
                    sp.dst_local as usize,
                    sp.gap as usize,
                    &vals[off..off + len],
                );
                off += len;
            }
        }
        bcag_trace::count("recv_wait_ns", wait_ns);
        Ok(())
    }
}

/// Blocks for one typed message while watching the pool fabric for a
/// peer's poison, so a panicking node job cannot strand the counted
/// receive loop of [`ExecMode::PerElement`].
///
/// The `try_recv` fast path keeps the steady flow at plain-`recv` cost
/// (no deadline computation per message); the timeout machinery only
/// engages when the queue is momentarily empty.
fn recv_typed<M>(inbox: &mpsc::Receiver<M>, ctx: &mut NodeCtx) -> M {
    // Brief spin bridges the gap when the receiver momentarily outruns
    // its senders, avoiding a park/unpark round-trip per message.
    for _ in 0..128 {
        if let Ok(msg) = inbox.try_recv() {
            return msg;
        }
        std::hint::spin_loop();
    }
    loop {
        match inbox.recv_timeout(std::time::Duration::from_millis(25)) {
            Ok(msg) => return msg,
            Err(mpsc::RecvTimeoutError::Timeout) => ctx.check_poison(),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("typed channel closed before the counted receive finished")
            }
        }
    }
}

/// Convenience wrapper: build the schedule and execute it.
pub fn assign_array<T: PackValue>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    b: &DistArray<T>,
    sec_b: &RegularSection,
    method: Method,
) -> Result<()> {
    assert_eq!(a.p(), b.p(), "arrays must live on the same machine");
    let schedule = CommSchedule::build(a.p(), a.k(), sec_a, b.k(), sec_b, method)?;
    schedule.execute(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_assign(a: &mut [i64], sec_a: &RegularSection, b: &[i64], sec_b: &RegularSection) {
        let ea: Vec<i64> = sec_a.iter().collect();
        let eb: Vec<i64> = sec_b.iter().collect();
        assert_eq!(ea.len(), eb.len());
        for (ia, ib) in ea.iter().zip(&eb) {
            a[*ia as usize] = b[*ib as usize];
        }
    }

    #[test]
    fn same_layout_strided_copy() {
        let n = 300i64;
        let bg: Vec<i64> = (0..n).map(|i| 1000 + i).collect();
        let b = DistArray::from_global(4, 8, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, 0i64).unwrap();
        let sec_a = RegularSection::new(0, 290, 10).unwrap();
        let sec_b = RegularSection::new(5, 295, 10).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![0i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn different_block_sizes_redistribution() {
        // A is cyclic(8), B is cyclic(3): a genuine redistribution.
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| i * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn per_element_mode_matches_batched() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 3 * i + 1).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        let mut batched = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut batched, &b, ExecMode::Batched)
            .unwrap();
        let mut per_elem = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut per_elem, &b, ExecMode::PerElement)
            .unwrap();
        assert_eq!(batched.to_global(), per_elem.to_global());
    }

    #[test]
    fn every_transport_matches_the_oracle() {
        // The shm fabric and the serialized in-process proc fabric must
        // produce bit-identical arrays to the mpsc reference, through
        // both launch modes.
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 5 * i - 7).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        for kind in TransportKind::ALL {
            for launch in [LaunchMode::Pooled, LaunchMode::Scoped] {
                let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
                sched
                    .execute_transport(&mut a, &b, ExecMode::Batched, launch, kind)
                    .unwrap();
                assert_eq!(a.to_global(), expect, "{} {}", kind.name(), launch.name());
            }
        }
    }

    #[test]
    fn serialized_fabric_moves_array_payloads() {
        // [f64; 4] exercises the composite wire format end to end over
        // the serializing in-process fabric.
        let n = 96i64;
        let bg: Vec<[f64; 4]> = (0..n)
            .map(|i| [i as f64, -i as f64, 0.5 * i as f64, 1.0])
            .collect();
        let b = DistArray::from_global(4, 5, &bg).unwrap();
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let sched = CommSchedule::build_lattice(4, 3, &sec, 5, &sec).unwrap();
        let mut a = DistArray::new(4, 3, n, [0.0f64; 4]).unwrap();
        sched
            .execute_transport(
                &mut a,
                &b,
                ExecMode::Batched,
                LaunchMode::Scoped,
                TransportKind::Proc,
            )
            .unwrap();
        assert_eq!(a.to_global(), bg);
    }

    #[test]
    fn schedule_accounting_drives_execution() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 7 * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        sched.execute(&mut a, &b).unwrap();
        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn empty_sections_are_noop() {
        let sec = RegularSection::new(10, 5, 1).unwrap();
        let sched = CommSchedule::build(2, 4, &sec, 4, &sec, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 0);
        let b = DistArray::new(2, 4, 20, 3i64).unwrap();
        let mut a = DistArray::new(2, 4, 20, 7i64).unwrap();
        sched.execute(&mut a, &b).unwrap();
        assert!(a.to_global().iter().all(|&x| x == 7));
    }

    #[test]
    fn clone_payloads_move_correctly() {
        // Strings take the clone-based default PackValue path; on the
        // serializing fabric they fall back to boxed envelopes.
        let n = 60i64;
        let bg: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let b = DistArray::from_global(3, 4, &bg).unwrap();
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let sched = CommSchedule::build(3, 7, &sec, 4, &sec, Method::Lattice).unwrap();
        for kind in TransportKind::ALL {
            let mut a = DistArray::new(3, 7, n, String::new()).unwrap();
            sched
                .execute_transport(&mut a, &b, ExecMode::Batched, LaunchMode::Scoped, kind)
                .unwrap();
            assert_eq!(a.to_global(), bg, "{}", kind.name());
        }
    }
}
