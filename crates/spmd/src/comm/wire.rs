//! Payload representation: the [`PackValue`] hooks the executors' inner
//! loops are built on, and the run-encoded wire format the serialized
//! transports ship.
//!
//! A batched message is conceptually `(Vec<RunSpan>, Vec<T>)`: run
//! headers saying *where* the next `len` payload values land, plus the
//! packed values themselves. In-memory backends move that pair as a
//! type-erased boxed envelope; serialized backends ([`TransportKind::
//! Proc`](crate::transport::TransportKind) in-process, and the
//! multi-process `bcag spmd` pipes) move its byte encoding:
//!
//! ```text
//! [nspans: u32] [nvals: u32] [elem_bytes: u32]      — 12-byte header
//! nspans × ([dst_local: i64] [gap: i64] [len: i64]) — 24 bytes per span
//! nvals  × (elem_bytes payload bytes)               — fixed-width values
//! ```
//!
//! All integers little-endian. A payload type opts into the wire with
//! [`PackValue::WIRE_BYTES`]`= Some(width)`; types without a fixed-width
//! encoding (`String`, `Vec`, `Option`) keep the default `None` and stay
//! on boxed envelopes (and are rejected by the multi-process executor).
//! [`wire_size`] is the *canonical* size of a message — the transport
//! byte counters charge it on every backend, serialized or not, so
//! `transport_bytes_tx`/`_rx` totals are backend-independent.

use super::schedule::{Transfer, TransferRun};

/// On-the-wire run header of the batched executor's run-encoded messages:
/// the next `len` payload values land at `dst_local, dst_local + gap, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpan {
    /// First destination local address.
    pub dst_local: i64,
    /// Destination address step.
    pub gap: i64,
    /// Number of payload values belonging to this span.
    pub len: i64,
}

/// Payload types the communication engine can move.
///
/// The hooks cover the engine's inner loops: packing outgoing transfers
/// into a message buffer, applying same-node transfers in place, and the
/// run-coalesced variants (`extend_run`/`write_run`/`apply_runs`) the
/// batched executor and [`crate::pack`] are built on. The default bodies
/// clone element by element — correct for any `Clone` payload. The macro
/// below overrides them for the primitive numeric types with straight
/// copies — `extend_from_slice`/`copy_from_slice` for unit-gap runs — so
/// `i64`/`f64` payloads (the common case) never run a `clone()` call per
/// element. (Rust's coherence rules forbid a blanket `impl<T: Copy>` next
/// to the `String`/`Vec` impls, so the fast path is spelled out per
/// primitive.)
///
/// The wire hooks (`WIRE_BYTES`/`wire_write`/`wire_read`) give a type a
/// fixed-width byte encoding for the serialized transports; the numeric
/// primitives use their little-endian byte representation (`isize`/
/// `usize` widths are the host's — the multi-process launcher only ever
/// spans one machine).
///
/// The `'static` bound lets packed messages travel the type-erased pool
/// fabric (`Box<dyn Any + Send>`) and rest in buffer arenas between
/// statements.
pub trait PackValue: Clone + Send + Sync + 'static {
    /// Fixed per-element wire width in bytes, or `None` if the type has
    /// no byte-exact wire format (it then travels only as an in-memory
    /// boxed envelope).
    const WIRE_BYTES: Option<usize> = None;

    /// Appends this value's `WIRE_BYTES` encoding onto `out`. Only called
    /// when [`PackValue::WIRE_BYTES`] is `Some`.
    fn wire_write(&self, _out: &mut Vec<u8>) {
        unreachable!("payload type has no wire format (WIRE_BYTES is None)")
    }

    /// Decodes one value from exactly `WIRE_BYTES` bytes. Only called
    /// when [`PackValue::WIRE_BYTES`] is `Some`.
    fn wire_read(_bytes: &[u8]) -> Self {
        unreachable!("payload type has no wire format (WIRE_BYTES is None)")
    }

    /// Appends `(dst_local, value)` records for `transfers` onto `out`,
    /// reading payloads from the source node's local memory `src`.
    fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize].clone()));
        }
    }

    /// Applies same-node transfers straight from `src` into `dst`, without
    /// staging through a message.
    fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize].clone();
        }
    }

    /// Appends the `len` elements `src[addr], src[addr + gap], …` onto
    /// `out` — one traversal segment of a pack.
    fn extend_run(out: &mut Vec<Self>, src: &[Self], addr: usize, gap: usize, len: usize) {
        if gap == 1 {
            out.extend(src[addr..addr + len].iter().cloned());
        } else {
            let span = (len - 1) * gap + 1;
            out.extend(src[addr..addr + span].iter().step_by(gap).cloned());
        }
    }

    /// Writes `vals` into `dst[addr], dst[addr + gap], …` — one traversal
    /// segment of an unpack.
    fn write_run(dst: &mut [Self], addr: usize, gap: usize, vals: &[Self]) {
        if vals.is_empty() {
            return;
        }
        if gap == 1 {
            dst[addr..addr + vals.len()].clone_from_slice(vals);
        } else {
            let span = (vals.len() - 1) * gap + 1;
            for (d, v) in dst[addr..addr + span].iter_mut().step_by(gap).zip(vals) {
                *d = v.clone();
            }
        }
    }

    /// Applies same-node transfer runs straight from `src` into `dst` —
    /// the run-coalesced form of [`PackValue::apply_local`].
    fn apply_runs(dst: &mut [Self], src: &[Self], runs: &[TransferRun]) {
        for r in runs {
            for j in 0..r.len {
                dst[(r.dst_local + j * r.dgap) as usize] =
                    src[(r.src_local + j * r.sgap) as usize].clone();
            }
        }
    }
}

/// Shared `Copy` fast paths: the macro'd primitive impls and the `[U; N]`
/// impl all delegate here, so the memcpy bodies exist once.
mod copy_fast {
    use super::{Transfer, TransferRun};

    pub fn pack_into<T: Copy>(src: &[T], transfers: &[Transfer], out: &mut Vec<(i64, T)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize]));
        }
    }

    pub fn apply_local<T: Copy>(dst: &mut [T], src: &[T], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize];
        }
    }

    pub fn extend_run<T: Copy>(out: &mut Vec<T>, src: &[T], addr: usize, gap: usize, len: usize) {
        if gap == 1 {
            out.extend_from_slice(&src[addr..addr + len]);
            return;
        }
        // Wide-gap gather. Driving the source through `chunks_exact` (one
        // chunk per stride period, keep the head) gives the optimizer a
        // shufflable strided-load shape with an exact length; the plain
        // `step_by` extend does not vectorize. Small gaps are dispatched
        // to compile-time-constant chunk widths so the loop unrolls into
        // shuffles instead of scalar strided loads. The last element has
        // no full trailing chunk, so it is pushed separately.
        let span = (len - 1) * gap + 1;
        let src = &src[addr..addr + span];
        out.reserve(len);
        match gap {
            2 => gather_const::<T, 2>(out, src),
            3 => gather_const::<T, 3>(out, src),
            4 => gather_const::<T, 4>(out, src),
            _ => out.extend(src.chunks_exact(gap).map(|c| c[0])),
        }
        out.push(src[span - 1]);
    }

    fn gather_const<T: Copy, const G: usize>(out: &mut Vec<T>, src: &[T]) {
        out.extend(src.chunks_exact(G).map(|c| c[0]));
    }

    pub fn write_run<T: Copy>(dst: &mut [T], addr: usize, gap: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        if gap == 1 {
            dst[addr..addr + vals.len()].copy_from_slice(vals);
            return;
        }
        // Scatter mirror of `extend_run`: one chunk per stride period,
        // write the head, leave the gap bytes untouched; small gaps get
        // compile-time-constant chunk widths.
        let span = (vals.len() - 1) * gap + 1;
        let dst = &mut dst[addr..addr + span];
        dst[span - 1] = vals[vals.len() - 1];
        match gap {
            2 => scatter_const::<T, 2>(dst, vals),
            3 => scatter_const::<T, 3>(dst, vals),
            4 => scatter_const::<T, 4>(dst, vals),
            _ => {
                for (c, v) in dst.chunks_exact_mut(gap).zip(vals) {
                    c[0] = *v;
                }
            }
        }
    }

    fn scatter_const<T: Copy, const G: usize>(dst: &mut [T], vals: &[T]) {
        for (c, v) in dst.chunks_exact_mut(G).zip(vals) {
            c[0] = *v;
        }
    }

    pub fn apply_runs<T: Copy>(dst: &mut [T], src: &[T], runs: &[TransferRun]) {
        for r in runs {
            if r.sgap == 1 && r.dgap == 1 {
                let (s, d, n) = (r.src_local as usize, r.dst_local as usize, r.len as usize);
                dst[d..d + n].copy_from_slice(&src[s..s + n]);
            } else {
                for j in 0..r.len {
                    dst[(r.dst_local + j * r.dgap) as usize] =
                        src[(r.src_local + j * r.sgap) as usize];
                }
            }
        }
    }
}

/// Emits the five `copy_fast` delegations inside a `PackValue` impl.
macro_rules! copy_fast_methods {
    () => {
        fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
            copy_fast::pack_into(src, transfers, out)
        }

        fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
            copy_fast::apply_local(dst, src, transfers)
        }

        fn extend_run(out: &mut Vec<Self>, src: &[Self], addr: usize, gap: usize, len: usize) {
            copy_fast::extend_run(out, src, addr, gap, len)
        }

        fn write_run(dst: &mut [Self], addr: usize, gap: usize, vals: &[Self]) {
            copy_fast::write_run(dst, addr, gap, vals)
        }

        fn apply_runs(dst: &mut [Self], src: &[Self], runs: &[TransferRun]) {
            copy_fast::apply_runs(dst, src, runs)
        }
    };
}

macro_rules! pack_value_by_copy {
    ($($t:ty),* $(,)?) => {$(
        impl PackValue for $t {
            const WIRE_BYTES: Option<usize> = Some(std::mem::size_of::<$t>());

            fn wire_write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn wire_read(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes.try_into().expect("fixed wire width"))
            }

            copy_fast_methods!();
        }
    )*};
}

pack_value_by_copy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64);

impl PackValue for bool {
    const WIRE_BYTES: Option<usize> = Some(1);

    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn wire_read(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }

    copy_fast_methods!();
}

impl PackValue for char {
    const WIRE_BYTES: Option<usize> = Some(4);

    fn wire_write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }

    fn wire_read(bytes: &[u8]) -> Self {
        char::from_u32(u32::from_le_bytes(
            bytes.try_into().expect("fixed wire width"),
        ))
        .expect("wire bytes hold a scalar value")
    }

    copy_fast_methods!();
}

impl<U: PackValue + Copy, const N: usize> PackValue for [U; N] {
    const WIRE_BYTES: Option<usize> = match U::WIRE_BYTES {
        Some(w) => Some(w * N),
        None => None,
    };

    fn wire_write(&self, out: &mut Vec<u8>) {
        for u in self {
            u.wire_write(out);
        }
    }

    fn wire_read(bytes: &[u8]) -> Self {
        let w = U::WIRE_BYTES.expect("array wire format requires an element wire format");
        std::array::from_fn(|i| U::wire_read(&bytes[i * w..(i + 1) * w]))
    }

    copy_fast_methods!();
}

impl PackValue for String {}
impl<U: Clone + Send + Sync + 'static> PackValue for Vec<U> {}
impl<U: Clone + Send + Sync + 'static> PackValue for Option<U> {}

/// Bytes in the message header (`nspans`, `nvals`, `elem_bytes`).
const HEADER_BYTES: usize = 12;

/// Bytes per encoded [`RunSpan`] (three little-endian `i64`s).
const SPAN_BYTES: usize = 24;

/// Canonical on-the-wire size of a run-encoded message with `nspans` run
/// headers and `nvals` payload values. Defined for *every* payload type —
/// types without a wire format are charged at `size_of::<T>()` per value —
/// so the `transport_bytes_tx`/`_rx` counters are comparable across
/// backends whether or not the bytes were actually materialized.
pub fn wire_size<T: PackValue>(nspans: usize, nvals: usize) -> usize {
    let elem = T::WIRE_BYTES.unwrap_or(std::mem::size_of::<T>());
    HEADER_BYTES + nspans * SPAN_BYTES + nvals * elem
}

/// Encodes a run-encoded message. The output length is exactly
/// [`wire_size`]`::<T>(spans.len(), vals.len())`.
///
/// # Panics
///
/// If `T` has no wire format ([`PackValue::WIRE_BYTES`] is `None`) —
/// callers gate on that before choosing the serialized path.
pub fn encode<T: PackValue>(spans: &[RunSpan], vals: &[T]) -> Vec<u8> {
    let elem = T::WIRE_BYTES.expect("payload type has no wire format");
    let mut out = Vec::with_capacity(wire_size::<T>(spans.len(), vals.len()));
    out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    out.extend_from_slice(&(vals.len() as u32).to_le_bytes());
    out.extend_from_slice(&(elem as u32).to_le_bytes());
    for sp in spans {
        out.extend_from_slice(&sp.dst_local.to_le_bytes());
        out.extend_from_slice(&sp.gap.to_le_bytes());
        out.extend_from_slice(&sp.len.to_le_bytes());
    }
    for v in vals {
        v.wire_write(&mut out);
    }
    debug_assert_eq!(out.len(), wire_size::<T>(spans.len(), vals.len()));
    out
}

/// Decodes a message produced by [`encode`], appending onto the given
/// buffers (typically arena-recycled).
///
/// # Panics
///
/// On a malformed or truncated message, or an element-width mismatch —
/// the pipes are internal, so corruption is a bug, not an input error.
pub fn decode_into<T: PackValue>(bytes: &[u8], spans: &mut Vec<RunSpan>, vals: &mut Vec<T>) {
    let elem = T::WIRE_BYTES.expect("payload type has no wire format");
    let word =
        |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
    assert!(bytes.len() >= HEADER_BYTES, "truncated wire header");
    let (nspans, nvals, got_elem) = (word(0), word(4), word(8));
    assert_eq!(got_elem, elem, "wire element width mismatch");
    assert_eq!(
        bytes.len(),
        HEADER_BYTES + nspans * SPAN_BYTES + nvals * elem,
        "wire message length mismatch"
    );
    let long = |at: usize| i64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    spans.reserve(nspans);
    for i in 0..nspans {
        let at = HEADER_BYTES + i * SPAN_BYTES;
        spans.push(RunSpan {
            dst_local: long(at),
            gap: long(at + 8),
            len: long(at + 16),
        });
    }
    let base = HEADER_BYTES + nspans * SPAN_BYTES;
    vals.reserve(nvals);
    for i in 0..nvals {
        vals.push(T::wire_read(&bytes[base + i * elem..base + (i + 1) * elem]));
    }
}

/// [`decode_into`] into fresh vectors.
pub fn decode<T: PackValue>(bytes: &[u8]) -> (Vec<RunSpan>, Vec<T>) {
    let mut spans = Vec::new();
    let mut vals = Vec::new();
    decode_into(bytes, &mut spans, &mut vals);
    (spans, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips_primitives_and_arrays() {
        let spans = vec![
            RunSpan {
                dst_local: 7,
                gap: 1,
                len: 3,
            },
            RunSpan {
                dst_local: -2,
                gap: 5,
                len: 1,
            },
        ];
        let ints = vec![1i64, -9, 1 << 40, 42];
        let bytes = encode(&spans, &ints);
        assert_eq!(bytes.len(), wire_size::<i64>(spans.len(), ints.len()));
        assert_eq!(decode::<i64>(&bytes), (spans.clone(), ints));

        let quads = vec![[1.5f64, -2.0, 0.0, 3.25], [f64::MAX, f64::MIN, 0.5, -0.5]];
        let bytes = encode(&spans, &quads);
        assert_eq!(bytes.len(), wire_size::<[f64; 4]>(spans.len(), quads.len()));
        assert_eq!(decode::<[f64; 4]>(&bytes), (spans.clone(), quads));

        let small = vec![true, false, true];
        let chars = vec!['α', 'z', '🦀'];
        assert_eq!(decode::<bool>(&encode(&spans, &small)).1, small);
        assert_eq!(decode::<char>(&encode(&spans, &chars)).1, chars);
    }

    #[test]
    fn empty_message_is_just_a_header() {
        let bytes = encode::<u8>(&[], &[]);
        assert_eq!(bytes.len(), 12);
        assert_eq!(decode::<u8>(&bytes), (vec![], vec![]));
    }

    #[test]
    fn unencodable_types_have_no_wire_width() {
        assert_eq!(String::WIRE_BYTES, None);
        assert_eq!(Vec::<i64>::WIRE_BYTES, None);
        assert_eq!(Option::<f64>::WIRE_BYTES, None);
        // ... but the canonical size is still defined for the counters.
        assert_eq!(
            wire_size::<String>(2, 10),
            12 + 2 * 24 + 10 * std::mem::size_of::<String>()
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn truncated_message_panics() {
        let mut bytes = encode(
            &[RunSpan {
                dst_local: 0,
                gap: 1,
                len: 2,
            }],
            &[1i64, 2],
        );
        bytes.truncate(bytes.len() - 1);
        let _ = decode::<i64>(&bytes);
    }
}
