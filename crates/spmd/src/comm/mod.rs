//! Communication sets for two-sided array assignments
//! `A(lₐ : uₐ : sₐ) = B(l_b : u_b : s_b)`.
//!
//! When the right-hand side lives on different processors than the
//! left-hand side, node programs must exchange elements. Computing *which*
//! elements (the communication sets) is the companion problem Chatterjee
//! et al. and Stichnoth et al. study; here it is a substrate for the
//! examples, built directly on the access-sequence machinery: each source
//! processor enumerates the RHS elements it owns with the core algorithm,
//! maps each element's section rank to its LHS home, and the exchange is
//! executed by message passing over the pluggable [`crate::transport`]
//! fabric (standing in for the iPSC/860's message passing). Node bodies
//! launch through [`crate::pool`]: pooled mode reuses the resident fabric
//! and recycles message buffers through each node's arena; scoped mode
//! reproduces the historical per-call spawn. Both modes run the identical
//! body, so all deterministic counter totals are bit-identical across
//! modes — and across transports, because the transport byte counters
//! are charged at the canonical wire size on every backend.
//!
//! The module splits along the three phases of the problem:
//!
//! * [`schedule`] — *what moves*: [`Transfer`]/[`TransferRun`] rows in
//!   flat CSR storage, built by enumeration or in closed form, plus the
//!   [`MessageMatrix`] planning query;
//! * [`wire`] — *how it is represented*: the [`PackValue`] payload hooks
//!   (pack/apply/run-coalesced fast paths) and the run-encoded wire
//!   format (`RunSpan` headers + fixed-width payload bytes) the
//!   serialized backends ship;
//! * [`exec`] — *how it runs*: the batched and per-element executors over
//!   any [`crate::transport::TransportKind`], and the multi-process
//!   executor behind `bcag spmd`.

pub mod exec;
pub mod schedule;
pub mod wire;

pub use exec::{assign_array, ExecMode};
pub use schedule::{CommSchedule, MessageMatrix, Transfer, TransferRun};
pub use wire::{PackValue, RunSpan};
