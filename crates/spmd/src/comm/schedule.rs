//! Schedule construction: which elements move between which nodes.
//!
//! The schedule is stored flat: one CSR buffer of [`Transfer`]s with a
//! `p² + 1` offset table ([`crate::csr::Csr`]), so building allocates
//! O(1) vectors instead of the O(p²) of a `Vec<Vec<Vec<_>>>` encoding and
//! a per-pair transfer list is a free slice. Every construction path also
//! compiles the run-coalesced form of each row ([`TransferRun`]) up
//! front, so cached schedules carry their runs for free.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::Layout;

use crate::csr::Csr;

/// One element transfer: local address on the source, local address on the
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Local address in the source processor's memory (RHS array).
    pub src_local: i64,
    /// Local address in the destination processor's memory (LHS array).
    pub dst_local: i64,
}

/// A maximal group of consecutive transfers whose source and destination
/// addresses both advance by constant gaps — the communication-set twin of
/// [`bcag_core::runs::Run`]. Transfer `j` of the run moves
/// `src_local + j·sgap` → `dst_local + j·dgap`; `(1, 1)` runs are straight
/// `memcpy`s on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRun {
    /// First source local address.
    pub src_local: i64,
    /// First destination local address.
    pub dst_local: i64,
    /// Number of transfers in the run (`>= 1`).
    pub len: i64,
    /// Source-side address step (`1` = contiguous read).
    pub sgap: i64,
    /// Destination-side address step (`1` = contiguous write).
    pub dgap: i64,
}

/// The full communication schedule for one array assignment: for each
/// (source, destination) pair, the ordered element transfers, stored as
/// one flat CSR buffer with rows indexed `src * p + dst`, plus the
/// run-coalesced form of every row (computed once at build time, cached
/// with the schedule by [`crate::cache`]).
#[derive(Debug, Clone)]
pub struct CommSchedule {
    pub(crate) p: i64,
    /// Row `src * p + dst` lists transfers from node `src` to node `dst`
    /// in increasing section-rank order.
    pairs: Csr<Transfer>,
    /// Run-coalesced rows: same indexing, each row the constant-gap run
    /// decomposition of the corresponding `pairs` row.
    runs: Csr<TransferRun>,
}

/// Greedy maximal constant-gap grouping of one transfer row (the
/// communication-set analogue of `bcag_core::runs`). A run absorbs the
/// next transfer while both address gaps stay constant; a non-unit run
/// never steals the head of a following `(1, 1)` run, so the memcpy runs
/// stay maximal.
fn compile_transfer_runs(trs: &[Transfer], out: &mut crate::csr::CsrBuilder<TransferRun>) {
    let gaps = |a: &Transfer, b: &Transfer| (b.src_local - a.src_local, b.dst_local - a.dst_local);
    let n = trs.len();
    let mut i = 0usize;
    while i < n {
        let mut len = 1i64;
        let mut sgap = 1i64;
        let mut dgap = 1i64;
        if i + 1 < n {
            let g = gaps(&trs[i], &trs[i + 1]);
            // Start a multi-transfer run only if the gaps are positive and
            // either unit-unit (always worth a memcpy) or confirmed by a
            // second matching pair (don't steal a lone element).
            let viable = g.0 > 0
                && g.1 > 0
                && (g == (1, 1) || (i + 2 < n && gaps(&trs[i + 1], &trs[i + 2]) == g));
            if viable {
                (sgap, dgap) = g;
                let mut j = i + 1;
                while j + 1 < n
                    && gaps(&trs[j], &trs[j + 1]) == g
                    && (g == (1, 1) || j + 2 >= n || gaps(&trs[j + 1], &trs[j + 2]) != (1, 1))
                {
                    j += 1;
                }
                len = (j - i + 1) as i64;
            }
        }
        out.push(TransferRun {
            src_local: trs[i].src_local,
            dst_local: trs[i].dst_local,
            len,
            sgap,
            dgap,
        });
        i += len as usize;
    }
}

/// Closed-form `p × p` message matrix: `get(src, dst)` is the number of
/// elements moving from `src` to `dst`, stored flat (row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageMatrix {
    p: i64,
    counts: Vec<i64>,
}

impl MessageMatrix {
    /// Machine size.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Elements moving from `src` to `dst`.
    pub fn get(&self, src: i64, dst: i64) -> i64 {
        self.counts[(src * self.p + dst) as usize]
    }

    /// Row `src`: per-destination counts as a slice.
    pub fn row(&self, src: i64) -> &[i64] {
        let base = (src * self.p) as usize;
        &self.counts[base..base + self.p as usize]
    }

    /// All `(src, dst, count)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as i64 / self.p, i as i64 % self.p, n))
    }

    /// Total element count (equals the section size).
    pub fn total(&self) -> i64 {
        self.counts.iter().sum()
    }
}

impl CommSchedule {
    /// Wraps a completed transfer CSR into a schedule, compiling the
    /// run-coalesced form of every row up front. All construction funnels
    /// through here, so any cached schedule carries its runs for free.
    fn from_pairs(p: i64, pairs: Csr<Transfer>) -> CommSchedule {
        let rows = pairs.rows();
        let mut runs = Csr::builder();
        for r in 0..rows {
            compile_transfer_runs(pairs.row(r), &mut runs);
            runs.finish_row();
        }
        CommSchedule {
            p,
            pairs,
            runs: runs.finish(rows),
        }
    }

    /// Builds the schedule for `A(sec_a) = B(sec_b)` where `A` is laid out
    /// `(p, k_a)` and `B` is `(p, k_b)`. Both sections must have the same
    /// element count and ascending strides.
    pub fn build(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
        method: Method,
    ) -> Result<CommSchedule> {
        let _sp = bcag_trace::span("comm.build");
        check_sections(sec_a, sec_b)?;
        if sec_b.count() == 0 {
            return Ok(CommSchedule::from_pairs(p, Csr::empty((p * p) as usize)));
        }
        let pn = p as usize;
        let lay_a = Layout::from_raw(p, k_a);
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let mut pairs = Csr::builder();
        // Scratch reused across sources: transfers tagged with their
        // destination, then scattered into destination order by a stable
        // counting sort — no per-pair vectors anywhere.
        let mut tagged: Vec<(usize, Transfer)> = Vec::new();
        let mut slots: Vec<Transfer> = Vec::new();
        let mut cursor: Vec<usize> = vec![0; pn];
        for src in 0..p {
            // Enumerate the RHS elements owned by `src` with the core
            // algorithm, bounded by the section's upper bound.
            let pat = build(&problem_b, src, method)?;
            tagged.clear();
            cursor.fill(0);
            for acc in pat.iter_to(sec_b.u) {
                let t = (acc.global - sec_b.l) / sec_b.s; // section rank
                let a_elem = sec_a.l + t * sec_a.s;
                let dst = lay_a.owner(a_elem) as usize;
                tagged.push((
                    dst,
                    Transfer {
                        src_local: acc.local,
                        dst_local: lay_a.local_addr(a_elem),
                    },
                ));
                cursor[dst] += 1;
            }
            // Exclusive prefix sum: cursor[d] becomes row d's write position.
            let mut next = 0usize;
            for c in cursor.iter_mut() {
                let n = *c;
                *c = next;
                next += n;
            }
            slots.clear();
            slots.resize(
                tagged.len(),
                Transfer {
                    src_local: 0,
                    dst_local: 0,
                },
            );
            for &(dst, tr) in &tagged {
                slots[cursor[dst]] = tr;
                cursor[dst] += 1;
            }
            // cursor[d] now holds row d's end offset.
            let mut begin = 0usize;
            for &end in cursor.iter() {
                pairs.extend_row(&slots[begin..end]);
                pairs.finish_row();
                begin = end;
            }
        }
        Ok(CommSchedule::from_pairs(p, pairs.finish(pn * pn)))
    }

    /// Builds the same schedule in closed form, without enumerating the
    /// section: the ranks `t` whose B-element lives on `src` form one
    /// arithmetic progression per owned offset class (step `pk_b / d_b`),
    /// and likewise for the A-element on `dst`; each (class, class) pair
    /// intersects by the Chinese Remainder construction
    /// ([`bcag_core::intersect`]). Cost is `O(p² · k_a·k_b)` pair setup plus
    /// the output size, independent of how many *cycles* the section spans —
    /// the regime where rank-by-rank enumeration loses.
    pub fn build_lattice(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<CommSchedule> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.build_lattice");
        check_sections(sec_a, sec_b)?;
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(CommSchedule::from_pairs(p, Csr::empty((p * p) as usize)));
        }
        let lay_a = Layout::from_raw(p, k_a);
        let lay_b = Layout::from_raw(p, k_b);
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements(); // rank-space step, A side
        let step_b = problem_b.period_elements(); // rank-space step, B side

        // Rank-space progressions per processor: one AP per owned class.
        let rank_aps = |problem: &Problem, sec: &RegularSection, m: i64| -> Result<Vec<i64>> {
            Ok(first_cycle_locs(problem, m)?
                .into_iter()
                .map(|loc| (loc - sec.l) / sec.s)
                .collect())
        };

        // The A-side classes depend only on the destination — compute them
        // once instead of once per (src, dst) pair.
        let a_classes_by_dst: Vec<Vec<i64>> = (0..p)
            .map(|dst| rank_aps(&problem_a, sec_a, dst))
            .collect::<Result<_>>()?;

        let mut pairs = Csr::builder();
        let mut ts: Vec<i64> = Vec::new(); // scratch reused across pairs
        for src in 0..p {
            let b_classes = rank_aps(&problem_b, sec_b, src)?;
            for (dst, a_classes) in a_classes_by_dst.iter().enumerate() {
                ts.clear();
                for &tb in &b_classes {
                    let ap_b = Ap::new(tb, step_b);
                    for &ta in a_classes {
                        let ap_a = Ap::new(ta, step_a);
                        if let Some(common) = intersect(&ap_b, &ap_a) {
                            ts.reserve(common.count_to(t_max) as usize);
                            ts.extend(common.iter_to(t_max));
                        }
                    }
                }
                ts.sort_unstable();
                for &t in &ts {
                    let b_elem = sec_b.l + t * sec_b.s;
                    let a_elem = sec_a.l + t * sec_a.s;
                    debug_assert_eq!(lay_b.owner(b_elem), src);
                    debug_assert_eq!(lay_a.owner(a_elem), dst as i64);
                    pairs.push(Transfer {
                        src_local: lay_b.local_addr(b_elem),
                        dst_local: lay_a.local_addr(a_elem),
                    });
                }
                pairs.finish_row();
            }
        }
        Ok(CommSchedule::from_pairs(p, pairs.finish((p * p) as usize)))
    }

    /// Computes only the **message matrix** — `get(src, dst)` = number of
    /// elements moving from `src` to `dst` — entirely in closed form: each
    /// (B-class, A-class) pair contributes `|AP ∩ AP ∩ [0, count)|`, one
    /// CRT plus one division per pair. `O(p² · k_a·k_b)` total, independent
    /// of the section length — the planning query a compiler asks when
    /// choosing between communication strategies, without materializing a
    /// single transfer.
    pub fn message_matrix(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<MessageMatrix> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.message_matrix");
        check_sections(sec_a, sec_b)?;
        let mut counts = vec![0i64; (p * p) as usize];
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(MessageMatrix { p, counts });
        }
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements();
        let step_b = problem_b.period_elements();
        // Per-processor first ranks per class, on each side.
        let ranks = |problem: &Problem, sec: &RegularSection| -> Result<Vec<Vec<i64>>> {
            (0..p)
                .map(|m| {
                    Ok(first_cycle_locs(problem, m)?
                        .into_iter()
                        .map(|loc| (loc - sec.l) / sec.s)
                        .collect())
                })
                .collect()
        };
        let b_side = ranks(&problem_b, sec_b)?;
        let a_side = ranks(&problem_a, sec_a)?;
        for src in 0..p as usize {
            for dst in 0..p as usize {
                let mut total = 0i64;
                for &tb in &b_side[src] {
                    for &ta in &a_side[dst] {
                        if let Some(common) = intersect(&Ap::new(tb, step_b), &Ap::new(ta, step_a))
                        {
                            total += common.count_to(t_max);
                        }
                    }
                }
                counts[src * p as usize + dst] = total;
            }
        }
        Ok(MessageMatrix { p, counts })
    }

    /// Transfers from `src` to `dst` — a free slice into the CSR buffer.
    pub fn transfers(&self, src: i64, dst: i64) -> &[Transfer] {
        self.pair(src as usize, dst as usize)
    }

    /// Run-coalesced form of the same row [`CommSchedule::transfers`]
    /// returns: the greedy maximal constant-gap run decomposition computed
    /// once at build time.
    pub fn transfer_runs(&self, src: i64, dst: i64) -> &[TransferRun] {
        self.pair_runs(src as usize, dst as usize)
    }

    pub(crate) fn pair(&self, src: usize, dst: usize) -> &[Transfer] {
        self.pairs.row(src * self.p as usize + dst)
    }

    pub(crate) fn pair_runs(&self, src: usize, dst: usize) -> &[TransferRun] {
        self.runs.row(src * self.p as usize + dst)
    }

    /// Total number of elements moved (equals the section size).
    pub fn total_elements(&self) -> usize {
        self.pairs.len()
    }

    /// Number of nonlocal element transfers (src != dst): the communication
    /// volume a real machine would put on the network.
    pub fn nonlocal_elements(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).filter_map(move |d| (s != d).then_some((s, d))))
            .map(|(s, d)| self.pair(s, d).len())
            .sum()
    }

    /// Number of non-empty (src, dst ≠ src) pairs — exactly the number of
    /// messages the batched executor sends, and the schedule-side twin of
    /// the traced `messages_sent` counter.
    pub fn nonempty_nonlocal_pairs(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && !self.pair(s, d).is_empty())
            .count()
    }
}

pub(crate) fn check_sections(sec_a: &RegularSection, sec_b: &RegularSection) -> Result<()> {
    if sec_a.count() != sec_b.count() {
        return Err(BcagError::Precondition(
            "assignment requires conforming sections (equal element counts)",
        ));
    }
    if sec_a.s <= 0 || sec_b.s <= 0 {
        return Err(BcagError::Precondition(
            "communication schedule requires ascending sections; normalize first",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_accounting() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 1).unwrap();
        let sched = CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 100);
        // Identical layouts and sections: everything is local.
        assert_eq!(sched.nonlocal_elements(), 0);
        assert_eq!(sched.nonempty_nonlocal_pairs(), 0);

        // Shifted section: most transfers cross processors.
        let sec_b2 = RegularSection::new(8, 107, 1).unwrap();
        let sched2 = CommSchedule::build(4, 8, &sec_a, 8, &sec_b2, Method::Lattice).unwrap();
        assert_eq!(sched2.total_elements(), 100);
        assert!(sched2.nonlocal_elements() > 0);
        assert!(sched2.nonempty_nonlocal_pairs() > 0);
    }

    #[test]
    fn nonconforming_sections_rejected() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 2).unwrap();
        assert!(CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).is_err());
    }

    #[test]
    fn lattice_schedule_equals_enumerated_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
            (1, 4, 4, 0, 0, 3, 3, 10),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let enumerated =
                CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let lattice = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        lattice.transfers(src, dst),
                        enumerated.transfers(src, dst),
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_matrix_matches_materialized_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let sched = CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let matrix = CommSchedule::message_matrix(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        matrix.get(src, dst),
                        sched.transfers(src, dst).len() as i64,
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
            // Conservation: the matrix sums to the section size.
            assert_eq!(matrix.total(), count);
        }
    }

    #[test]
    fn message_matrix_scales_without_materialization() {
        // A section far too large to enumerate cheaply: counts still come
        // out exactly (checked by conservation and symmetry properties).
        let n = 50_000_000i64;
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let shifted = RegularSection::new(1, n, 1).unwrap();
        let m = CommSchedule::message_matrix(8, 16, &sec, 16, &shifted).unwrap();
        assert_eq!(m.total(), n);
        // Shift by 1 within blocks of 16: 15/16 of elements stay local.
        let local: i64 = (0..8).map(|i| m.get(i, i)).sum();
        assert!(
            local * 16 > m.total() * 14,
            "local fraction ~15/16, got {local}/{}",
            m.total()
        );
    }
}
