//! The simulated SPMD machine.
//!
//! The paper's experiments ran the same node program on all 32 processors
//! of an iPSC/860 and reported the maximum time over processors. Here each
//! simulated processor is an OS thread executing the node program against
//! its own local memory; [`Machine::run`] is the SPMD launch, and
//! [`Machine::run_timed`] reproduces the "maximum over all processors"
//! measurement discipline.

use std::time::Duration;

/// A simulated distributed-memory machine with `p` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    p: i64,
}

impl Machine {
    /// Creates a machine with `p >= 1` nodes.
    pub fn new(p: i64) -> Self {
        assert!(p >= 1, "machine needs at least one node");
        Machine { p }
    }

    /// Number of nodes.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Runs `node(m, &mut locals[m])` on every node concurrently, one OS
    /// thread per node, with exclusive access to that node's local memory.
    ///
    /// When tracing is enabled, each node's lane is labeled `node-<m>` and
    /// carries one `spmd.node` span per launch, plus a `barrier_wait_ns`
    /// counter: the time the node idled at the implicit join barrier while
    /// the slowest node finished.
    pub fn run<T, F>(&self, locals: &mut [Vec<T>], node: F)
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) + Sync,
    {
        if bcag_trace::enabled() {
            // The timed path produces the per-node spans and barrier
            // accounting; the durations are discarded.
            let _ = self.run_timed(locals, node);
            return;
        }
        assert_eq!(locals.len() as i64, self.p, "one local memory per node");
        std::thread::scope(|scope| {
            for (m, local) in locals.iter_mut().enumerate() {
                let node = &node;
                scope.spawn(move || node(m, local));
            }
        });
    }

    /// Like [`Machine::run`], but each node times its own execution;
    /// returns the per-node durations (callers typically take the max, as
    /// the paper does).
    pub fn run_timed<T, F>(&self, locals: &mut [Vec<T>], node: F) -> Vec<Duration>
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) + Sync,
    {
        assert_eq!(locals.len() as i64, self.p, "one local memory per node");
        let mut times = vec![Duration::ZERO; locals.len()];
        std::thread::scope(|scope| {
            for ((m, local), slot) in locals.iter_mut().enumerate().zip(times.iter_mut()) {
                let node = &node;
                scope.spawn(move || {
                    if bcag_trace::enabled() {
                        bcag_trace::set_lane_label(&format!("node-{m}"));
                    }
                    let _sp = bcag_trace::span("spmd.node");
                    let t0 = std::time::Instant::now();
                    node(m, local);
                    *slot = t0.elapsed();
                });
            }
        });
        record_barrier_waits(&times);
        times
    }

    /// Runs a node program that needs no local memory (e.g. pure table
    /// construction); returns each node's result.
    pub fn run_collect<R, F>(&self, node: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = (0..self.p).map(|_| None).collect();
        let tracing = bcag_trace::enabled();
        let mut times = vec![Duration::ZERO; self.p as usize];
        std::thread::scope(|scope| {
            for ((m, slot), time) in out.iter_mut().enumerate().zip(times.iter_mut()) {
                let node = &node;
                scope.spawn(move || {
                    if bcag_trace::enabled() {
                        bcag_trace::set_lane_label(&format!("node-{m}"));
                    }
                    let _sp = bcag_trace::span("spmd.node");
                    let t0 = std::time::Instant::now();
                    *slot = Some(node(m));
                    *time = t0.elapsed();
                });
            }
        });
        if tracing {
            record_barrier_waits(&times);
        }
        out.into_iter()
            .map(|r| r.expect("node completed"))
            .collect()
    }
}

/// Credits each node lane with the time it idled at the join barrier:
/// `max(times) - times[m]`. Only the launcher knows the maximum, so this
/// runs after the join, on the launching thread.
fn record_barrier_waits(times: &[Duration]) {
    if !bcag_trace::enabled() {
        return;
    }
    let Some(max) = times.iter().max().copied() else {
        return;
    };
    for (m, &t) in times.iter().enumerate() {
        bcag_trace::count_on_lane(
            &format!("node-{m}"),
            "barrier_wait_ns",
            (max - t).as_nanos() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_gives_each_node_its_memory() {
        let machine = Machine::new(4);
        let mut locals: Vec<Vec<i64>> = (0..4).map(|m| vec![m as i64; 8]).collect();
        machine.run(&mut locals, |m, local| {
            for x in local.iter_mut() {
                *x += 100 * m as i64;
            }
        });
        for (m, local) in locals.iter().enumerate() {
            assert!(local.iter().all(|&x| x == m as i64 + 100 * m as i64));
        }
    }

    #[test]
    fn run_collect_gathers_results() {
        let machine = Machine::new(8);
        let results = machine.run_collect(|m| m * m);
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn run_timed_returns_per_node_durations() {
        let machine = Machine::new(3);
        let mut locals: Vec<Vec<u8>> = vec![vec![0; 4]; 3];
        let times = machine.run_timed(&mut locals, |_, local| {
            local.iter_mut().for_each(|x| *x = 1);
        });
        assert_eq!(times.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one local memory per node")]
    fn mismatched_locals_panics() {
        let machine = Machine::new(4);
        let mut locals: Vec<Vec<u8>> = vec![vec![]; 3];
        machine.run(&mut locals, |_, _| {});
    }
}
