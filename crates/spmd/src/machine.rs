//! The simulated SPMD machine.
//!
//! The paper's experiments ran the same node program on all 32 processors
//! of an iPSC/860 and reported the maximum time over processors. Here each
//! simulated processor is a thread executing the node program against
//! its own local memory; [`Machine::run`] is the SPMD launch, and
//! [`Machine::run_timed`] reproduces the "maximum over all processors"
//! measurement discipline.
//!
//! By default node programs run on the resident worker pool
//! ([`crate::pool`]): the `p` node threads boot once per process and
//! every subsequent launch is a dispatch, not a spawn. The historical
//! per-call `thread::scope` path remains selectable via
//! [`Machine::scoped`] / [`LaunchMode::Scoped`] for A/B measurement;
//! both paths run the identical node body, so all deterministic trace
//! counters are bit-identical across modes.

use std::sync::Mutex;
use std::time::Duration;

use crate::pool::{self, into_clean, lock_clean, LaunchMode};
use crate::transport::{self, TransportKind};

/// A simulated distributed-memory machine with `p` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Machine {
    p: i64,
    mode: LaunchMode,
    kind: TransportKind,
}

impl Machine {
    /// Creates a machine with `p >= 1` nodes, using the process-default
    /// launch mode (see [`pool::default_launch`]) and transport (see
    /// [`transport::default_transport`]).
    pub fn new(p: i64) -> Self {
        Machine::with_mode(p, pool::default_launch())
    }

    /// Creates a machine with an explicit launch mode on the
    /// process-default transport.
    pub fn with_mode(p: i64, mode: LaunchMode) -> Self {
        assert!(p >= 1, "machine needs at least one node");
        Machine {
            p,
            mode,
            kind: transport::default_transport(),
        }
    }

    /// Creates a machine whose node contexts exchange envelopes over an
    /// explicit fabric ([`TransportKind::Mpsc`], [`TransportKind::Shm`]
    /// or [`TransportKind::Proc`]).
    pub fn with_transport(p: i64, kind: TransportKind) -> Self {
        assert!(p >= 1, "machine needs at least one node");
        Machine {
            p,
            mode: pool::default_launch(),
            kind,
        }
    }

    /// Creates a pooled machine and eagerly boots its worker pool, so
    /// the first statement doesn't pay the one-time thread spawn.
    pub fn with_pool(p: i64) -> Self {
        let machine = Machine::with_mode(p, LaunchMode::Pooled);
        pool::warm(p);
        machine
    }

    /// Creates a machine on the historical per-call `thread::scope`
    /// path (fresh threads every launch).
    pub fn scoped(p: i64) -> Self {
        Machine::with_mode(p, LaunchMode::Scoped)
    }

    /// Number of nodes.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// This machine's launch mode.
    pub fn mode(&self) -> LaunchMode {
        self.mode
    }

    /// This machine's transport fabric.
    pub fn transport(&self) -> TransportKind {
        self.kind
    }

    /// The one launch loop behind [`Machine::run`], [`Machine::run_timed`]
    /// and [`Machine::run_collect`]: runs `node(m)` on every node through
    /// [`pool::launch`], times each node, and credits `barrier_wait_ns`
    /// after the join.
    fn launch_timed<F>(&self, node: F) -> Vec<Duration>
    where
        F: Fn(usize) + Sync,
    {
        let times: Vec<Mutex<Duration>> = (0..self.p).map(|_| Mutex::new(Duration::ZERO)).collect();
        pool::launch_with(self.p, self.mode, self.kind, |m, _ctx| {
            let _sp = bcag_trace::span("spmd.node");
            let t0 = std::time::Instant::now();
            node(m);
            *lock_clean(&times[m]) = t0.elapsed();
        });
        let times: Vec<Duration> = times.into_iter().map(into_clean).collect();
        record_barrier_waits(&times);
        times
    }

    /// Runs `node(m, &mut locals[m])` on every node concurrently, each
    /// with exclusive access to that node's local memory.
    ///
    /// When tracing is enabled, each node's lane is labeled `node-<m>` and
    /// carries one `spmd.node` span per launch, plus a `barrier_wait_ns`
    /// counter: the time the node idled at the implicit join barrier while
    /// the slowest node finished.
    pub fn run<T, F>(&self, locals: &mut [Vec<T>], node: F)
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) + Sync,
    {
        let _ = self.run_timed(locals, node);
    }

    /// Like [`Machine::run`], but each node times its own execution;
    /// returns the per-node durations (callers typically take the max, as
    /// the paper does).
    pub fn run_timed<T, F>(&self, locals: &mut [Vec<T>], node: F) -> Vec<Duration>
    where
        T: Send,
        F: Fn(usize, &mut Vec<T>) + Sync,
    {
        assert_eq!(locals.len() as i64, self.p, "one local memory per node");
        let slots: Vec<Mutex<&mut Vec<T>>> = locals.iter_mut().map(Mutex::new).collect();
        self.launch_timed(|m| {
            let mut slot = lock_clean(&slots[m]);
            node(m, &mut **slot)
        })
    }

    /// Runs a node program that needs no local memory (e.g. pure table
    /// construction); returns each node's result.
    pub fn run_collect<R, F>(&self, node: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..self.p).map(|_| Mutex::new(None)).collect();
        self.launch_timed(|m| {
            *lock_clean(&slots[m]) = Some(node(m));
        });
        slots
            .into_iter()
            .map(|slot| into_clean(slot).expect("node completed"))
            .collect()
    }
}

/// Credits each node lane with the time it idled at the join barrier:
/// `max(times) - times[m]`. Only the launcher knows the maximum, so this
/// runs after the join, on the launching thread.
fn record_barrier_waits(times: &[Duration]) {
    if !bcag_trace::enabled() {
        return;
    }
    let Some(max) = times.iter().max().copied() else {
        return;
    };
    for (m, &t) in times.iter().enumerate() {
        let label = format!("node-{m}");
        let wait = (max - t).as_nanos() as u64;
        bcag_trace::count_on_lane(&label, "barrier_wait_ns", wait);
        bcag_trace::record_on_lane(&label, "barrier_wait_ns", wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_gives_each_node_its_memory() {
        let machine = Machine::new(4);
        let mut locals: Vec<Vec<i64>> = (0..4).map(|m| vec![m as i64; 8]).collect();
        machine.run(&mut locals, |m, local| {
            for x in local.iter_mut() {
                *x += 100 * m as i64;
            }
        });
        for (m, local) in locals.iter().enumerate() {
            assert!(local.iter().all(|&x| x == m as i64 + 100 * m as i64));
        }
    }

    #[test]
    fn run_collect_gathers_results() {
        let machine = Machine::new(8);
        let results = machine.run_collect(|m| m * m);
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn run_timed_returns_per_node_durations() {
        let machine = Machine::new(3);
        let mut locals: Vec<Vec<u8>> = vec![vec![0; 4]; 3];
        let times = machine.run_timed(&mut locals, |_, local| {
            local.iter_mut().for_each(|x| *x = 1);
        });
        assert_eq!(times.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one local memory per node")]
    fn mismatched_locals_panics() {
        let machine = Machine::new(4);
        let mut locals: Vec<Vec<u8>> = vec![vec![]; 3];
        machine.run(&mut locals, |_, _| {});
    }

    #[test]
    fn pooled_and_scoped_agree() {
        for machine in [Machine::with_pool(5), Machine::scoped(5)] {
            let mut locals: Vec<Vec<i64>> = (0..5).map(|m| vec![m as i64; 6]).collect();
            machine.run(&mut locals, |m, local| {
                for (i, x) in local.iter_mut().enumerate() {
                    *x = (m * 10 + i) as i64;
                }
            });
            for (m, local) in locals.iter().enumerate() {
                let want: Vec<i64> = (0..6).map(|i| (m * 10 + i) as i64).collect();
                assert_eq!(local, &want, "mode {:?}", machine.mode());
            }
        }
    }
}
