//! Reductions over regular sections.
//!
//! The other half of data-parallel node code generation: statements like
//! `r = SUM(A(l:u:s))` reduce over a section instead of assigning to it.
//! Each node folds its owned elements using the same gap-table traversal as
//! the assignment path, then the per-node partials are combined — the
//! owner-computes analogue of an HPF reduction intrinsic.

use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::codeshapes::{traverse, CodeShape};
use crate::darray::DistArray;
use crate::machine::Machine;

/// Folds `f` over every section element on every node (in parallel), then
/// combines the per-node partial results with `combine`.
///
/// `init` seeds both levels, so `(init, combine)` must form a monoid over
/// the accumulator type for the result to be well-defined.
pub fn reduce_section<T, Acc, F, C>(
    arr: &DistArray<T>,
    section: &RegularSection,
    method: Method,
    shape: CodeShape,
    init: Acc,
    f: F,
    combine: C,
) -> Result<Acc>
where
    T: Clone + Send + Sync,
    Acc: Clone + Send + Sync,
    F: Fn(Acc, &T) -> Acc + Sync,
    C: Fn(Acc, Acc) -> Acc,
{
    let plans = crate::cache::plans(arr.p(), arr.k(), section, method)?;
    let machine = Machine::new(arr.p());
    let partials = machine.run_collect(|m| {
        let plan = &plans[m];
        let Some(start) = plan.start else {
            return init.clone();
        };
        let tables = plan.tables.as_ref().expect("non-empty plan has tables");
        // The traversal API hands out &mut T; reductions only read, so work
        // on a scratch clone of the node's local memory, which also mirrors
        // how a node program would stream over its own storage.
        let mut local: Vec<T> = arr.local(m as i64).to_vec();
        let mut acc = init.clone();
        traverse(
            shape,
            &mut local,
            start,
            plan.last,
            &plan.delta_m,
            tables,
            &plan.runs,
            |x| {
                acc = f(acc.clone(), x);
            },
        );
        acc
    });
    Ok(partials.into_iter().fold(init, combine))
}

/// `SUM(A(section))` for float elements.
pub fn sum_section(
    arr: &DistArray<f64>,
    section: &RegularSection,
    method: Method,
    shape: CodeShape,
) -> Result<f64> {
    reduce_section(
        arr,
        section,
        method,
        shape,
        0.0,
        |a, &x| a + x,
        |a, b| a + b,
    )
}

/// Dot product of two conforming sections of distributed arrays with the
/// same layout: `DOT_PRODUCT(A(sec_a), B(sec_b))`.
///
/// Requires identical `(p, k)` for both arrays and elementwise-conforming
/// sections whose t-th elements are co-located (true whenever
/// `sec_a == sec_b` and the layouts match); the general misaligned case
/// goes through [`crate::comm`] first.
pub fn dot_sections(
    a: &DistArray<f64>,
    sec_a: &RegularSection,
    b: &DistArray<f64>,
    sec_b: &RegularSection,
    method: Method,
) -> Result<f64> {
    use bcag_core::error::BcagError;
    if a.p() != b.p() || a.k() != b.k() {
        return Err(BcagError::Precondition(
            "dot_sections requires identical layouts; redistribute first",
        ));
    }
    if sec_a.count() != sec_b.count() {
        return Err(BcagError::Precondition("sections must conform"));
    }
    if sec_a != sec_b {
        return Err(BcagError::Precondition(
            "dot_sections requires co-located sections; use comm for the general case",
        ));
    }
    let plans = crate::cache::plans(a.p(), a.k(), sec_a, method)?;
    let machine = Machine::new(a.p());
    let partials = machine.run_collect(|m| {
        let plan = &plans[m];
        if plan.start.is_none() {
            return 0.0;
        }
        let la = a.local(m as i64);
        let lb = b.local(m as i64);
        // Two-operand loop over the run-coalesced plan: unit-gap segments
        // are plain slice zips the compiler can vectorize.
        let mut acc = 0.0;
        plan.runs.for_each_segment(|seg| {
            let a0 = seg.addr as usize;
            let len = seg.len as usize;
            if seg.gap == 1 {
                for (x, y) in la[a0..a0 + len].iter().zip(&lb[a0..a0 + len]) {
                    acc += x * y;
                }
            } else {
                let gap = seg.gap as usize;
                let span = (len - 1) * gap + 1;
                let xs = la[a0..a0 + span].iter().step_by(gap);
                let ys = lb[a0..a0 + span].iter().step_by(gap);
                for (x, y) in xs.zip(ys) {
                    acc += x * y;
                }
            }
        });
        acc
    });
    Ok(partials.into_iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_sequential() {
        let n = 500i64;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(3, 488, 7).unwrap();
        let expect: f64 = sec.iter().map(|i| data[i as usize]).sum();
        for shape in CodeShape::ALL {
            let got = sum_section(&arr, &sec, Method::Lattice, shape).unwrap();
            assert_eq!(got, expect, "shape {}", shape.label());
        }
    }

    #[test]
    fn reduce_with_max() {
        let data: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        let sec = RegularSection::new(0, 299, 3).unwrap();
        let expect = sec
            .iter()
            .map(|i| data[i as usize])
            .fold(f64::MIN, f64::max);
        let got = reduce_section(
            &arr,
            &sec,
            Method::Lattice,
            CodeShape::SplitLoop,
            f64::MIN,
            |a, &x| a.max(x),
            f64::max,
        )
        .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_section_reduces_to_init() {
        let arr = DistArray::new(2, 4, 50, 1.0f64).unwrap();
        let sec = RegularSection::new(40, 10, 3).unwrap();
        let got = sum_section(&arr, &sec, Method::Lattice, CodeShape::ModLoop).unwrap();
        assert_eq!(got, 0.0);
    }

    #[test]
    fn dot_product_matches_sequential() {
        let n = 400i64;
        let da: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let db: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();
        let a = DistArray::from_global(4, 8, &da).unwrap();
        let b = DistArray::from_global(4, 8, &db).unwrap();
        let sec = RegularSection::new(5, 390, 11).unwrap();
        let expect: f64 = sec.iter().map(|i| da[i as usize] * db[i as usize]).sum();
        let got = dot_sections(&a, &sec, &b, &sec, Method::Lattice).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn dot_rejects_mismatched_layouts() {
        let a = DistArray::new(4, 8, 100, 0.0).unwrap();
        let b = DistArray::new(4, 4, 100, 0.0).unwrap();
        let sec = RegularSection::new(0, 99, 1).unwrap();
        assert!(dot_sections(&a, &sec, &b, &sec, Method::Lattice).is_err());
    }
}
