//! Randomized differential suite: fused epochs vs the interpreted path.
//!
//! [`bcag_spmd::fuse`] promises bit-exact results with the interpreted
//! gather/compute statement executor. These properties draw random
//! statement shapes — machine size, block sizes, sections, operand
//! count, transport, launch mode — run both executors on identical
//! inputs and compare the full global images bit for bit (`f64` compares
//! `to_bits`, so `-0.0`/`NaN` drift would fail too). A panicking
//! statement body then checks the poison protocol clears a fused epoch
//! the same way it clears an interpreted one.

use std::sync::Mutex;

use bcag_core::section::RegularSection;
use bcag_harness::prop::{self, Config};
use bcag_harness::rng::Rng;
use bcag_spmd::fuse::assign_fused_on;
use bcag_spmd::pool::LaunchMode;
use bcag_spmd::{assign_expr, set_default_fused, DistArray, FusedMode, TransportKind};

/// The fused-mode default is process-global and the interpreted
/// reference runs need it `Off`; every test here flips it, so they
/// serialize on this lock (other test binaries are separate processes).
static FUSE_FLAG: Mutex<()> = Mutex::new(());

fn lock_flag() -> std::sync::MutexGuard<'static, ()> {
    FUSE_FLAG.lock().unwrap_or_else(|e| e.into_inner())
}

/// One random statement shape.
#[derive(Debug, Clone)]
struct Case {
    p: i64,
    k_a: i64,
    n: i64,
    sec_a: RegularSection,
    /// Operand block sizes and sections (all conforming to `sec_a`).
    ops: Vec<(i64, RegularSection)>,
    kind: TransportKind,
    launch: LaunchMode,
}

fn random_section(rng: &mut Rng, count: i64) -> (i64, RegularSection) {
    let stride = rng.random_range(1..=5);
    let lo = rng.random_range(0..=23);
    let hi = lo + (count - 1) * stride;
    (hi, RegularSection::new(lo, hi, stride).unwrap())
}

fn random_case(rng: &mut Rng) -> Case {
    let p = rng.random_range(1..=5);
    let k_a = rng.random_range(1..=10);
    let count = rng.random_range(1..=48);
    let (mut max_hi, sec_a) = random_section(rng, count);
    let nops = rng.random_range(0..=3);
    let mut ops = Vec::with_capacity(nops as usize);
    for _ in 0..nops {
        let k_b = rng.random_range(1..=10);
        let (hi, sec_b) = random_section(rng, count);
        max_hi = max_hi.max(hi);
        ops.push((k_b, sec_b));
    }
    let n = max_hi + 1 + rng.random_range(0..=9);
    let kind = *rng.choice(&TransportKind::ALL);
    let launch = *rng.choice(&[LaunchMode::Pooled, LaunchMode::Scoped]);
    Case {
        p,
        k_a,
        n,
        sec_a,
        ops,
        kind,
        launch,
    }
}

/// Runs one case through both executors over element type `T` and
/// compares the resulting global images with `eq`.
fn differential<T, F>(
    case: &Case,
    value: impl Fn(i64, usize) -> T,
    f: F,
    eq: impl Fn(&T, &T) -> bool,
) where
    T: bcag_spmd::PackValue + std::fmt::Debug,
    F: Fn(&[T]) -> T + Sync + Copy,
{
    let base: Vec<T> = (0..case.n).map(|i| value(i, 0)).collect();
    let mut fused = DistArray::from_global(case.p, case.k_a, &base).unwrap();
    let op_arrays: Vec<DistArray<T>> = case
        .ops
        .iter()
        .enumerate()
        .map(|(j, (k_b, _))| {
            let vals: Vec<T> = (0..case.n).map(|i| value(i, j + 1)).collect();
            DistArray::from_global(case.p, *k_b, &vals).unwrap()
        })
        .collect();
    let operands: Vec<(&DistArray<T>, RegularSection)> = op_arrays
        .iter()
        .zip(&case.ops)
        .map(|(a, (_, s))| (a, *s))
        .collect();
    let mut interp = fused.clone();
    assign_fused_on(
        &mut fused,
        &case.sec_a,
        &operands,
        f,
        case.launch,
        case.kind,
    )
    .unwrap();
    set_default_fused(FusedMode::Off);
    let r = assign_expr(&mut interp, &case.sec_a, &operands, f);
    set_default_fused(FusedMode::On);
    r.unwrap();
    let (fg, ig) = (fused.to_global(), interp.to_global());
    assert!(
        fg.len() == ig.len() && fg.iter().zip(&ig).all(|(a, b)| eq(a, b)),
        "fused image diverges from interpreted\n fused:  {fg:?}\n interp: {ig:?}"
    );
}

#[test]
fn fused_matches_interpreted_f64() {
    let _serial = lock_flag();
    prop::check("fuse-diff-f64", &prop::from_fn(random_case), |case| {
        differential(
            case,
            |i, j| ((i * 7 + 13 * j as i64) % 113) as f64 * 0.25 - 3.5,
            |args: &[f64]| {
                args.iter()
                    .enumerate()
                    .map(|(j, v)| (j as f64 + 1.0) * v)
                    .sum::<f64>()
                    + 0.125
            },
            |a: &f64, b: &f64| a.to_bits() == b.to_bits(),
        );
    });
}

#[test]
fn fused_matches_interpreted_i64() {
    let _serial = lock_flag();
    let cfg = Config {
        cases: 64,
        ..Config::default()
    };
    prop::check_with(&cfg, "fuse-diff-i64", &prop::from_fn(random_case), |case| {
        differential(
            case,
            |i, j| i * 31 + 7 * j as i64 - 11,
            |args: &[i64]| {
                args.iter().enumerate().fold(5i64, |acc, (j, v)| {
                    acc.wrapping_mul(3).wrapping_add(v * (j as i64 + 1))
                })
            },
            |a: &i64, b: &i64| a == b,
        );
    });
}

/// `String` payloads have no fixed wire size (`WIRE_BYTES` is `None`),
/// so the fused epoch ships boxed in-memory messages on every fabric —
/// including the serializing `proc` fabric, where the wire fast path
/// must correctly step aside.
#[test]
fn fused_matches_interpreted_strings() {
    let _serial = lock_flag();
    let cfg = Config {
        cases: 24,
        ..Config::default()
    };
    prop::check_with(
        &cfg,
        "fuse-diff-string",
        &prop::from_fn(random_case),
        |case| {
            differential(
                case,
                |i, j| format!("v{j}.{i}"),
                |args: &[String]| {
                    let mut out = String::from("(");
                    for a in args {
                        out.push_str(a);
                        out.push('|');
                    }
                    out.push(')');
                    out
                },
                |a: &String, b: &String| a == b,
            );
        },
    );
}

/// A statement body that panics mid-epoch must poison its peers, fail
/// the fused statement cleanly, and leave the pool and fabric reusable:
/// the very next fused statement on the same machine must run correctly.
#[test]
fn panic_poison_recovers_through_a_fused_epoch() {
    let _serial = lock_flag();
    let n = 120i64;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let sec = RegularSection::new(0, n - 1, 1).unwrap();
    for kind in TransportKind::ALL {
        let src = DistArray::from_global(4, 7, &data).unwrap();
        let mut dst = DistArray::from_global(4, 5, &data).unwrap();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assign_fused_on(
                &mut dst,
                &sec,
                &[(&src, sec)],
                |args: &[f64]| {
                    if args[0] == 60.0 {
                        panic!("injected fused-epoch failure");
                    }
                    args[0]
                },
                LaunchMode::Pooled,
                kind,
            )
        }));
        assert!(
            boom.is_err(),
            "{}: the node panic must propagate",
            kind.name()
        );
        // Pool survived and the fabric is clean: the next fused
        // statement over the same machine computes the exact image.
        let mut again = DistArray::from_global(4, 5, &data).unwrap();
        assign_fused_on(
            &mut again,
            &sec,
            &[(&src, sec)],
            |args: &[f64]| args[0] * 2.0 + 1.0,
            LaunchMode::Pooled,
            kind,
        )
        .unwrap();
        let got = again.to_global();
        for i in 0..n {
            assert_eq!(
                got[i as usize],
                i as f64 * 2.0 + 1.0,
                "{} i={i}",
                kind.name()
            );
        }
    }
}

/// The fused path must snapshot operands before writing (`A = shift(A)`
/// through the same array), exactly like the interpreted staging copy.
#[test]
fn fused_self_assignment_snapshots() {
    let _serial = lock_flag();
    let n = 100i64;
    let data: Vec<i64> = (0..n).collect();
    let mut a = DistArray::from_global(4, 4, &data).unwrap();
    let src = a.clone();
    let sec_dst = RegularSection::new(0, 89, 1).unwrap();
    let sec_src = RegularSection::new(10, 99, 1).unwrap();
    assign_fused_on(
        &mut a,
        &sec_dst,
        &[(&src, sec_src)],
        |args: &[i64]| args[0],
        LaunchMode::Pooled,
        TransportKind::Shm,
    )
    .unwrap();
    let g = a.to_global();
    for i in 0..90 {
        assert_eq!(g[i as usize], i + 10);
    }
    for i in 90..100 {
        assert_eq!(g[i as usize], i);
    }
}
