//! Batched execution vs the sequential oracle and the per-element path.
//!
//! The batched engine changes *how* elements move (one message per
//! non-empty (src, dst) pair, in-place self-transfers) but must not change
//! *what* moves or what the trace counters report. These tests pin all
//! three: element-for-element agreement with a sequential assignment,
//! counter-total equality across [`ExecMode`]s, and the exact
//! messages-sent = non-empty-nonlocal-pairs identity.

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_harness::prop;
use bcag_spmd::{cache, CommSchedule, DistArray, ExecMode, TransportKind};

/// Sequential oracle for `A(sec_a) = B(sec_b)` over global index space.
fn seq_assign(a: &mut [i64], sec_a: &RegularSection, b: &[i64], sec_b: &RegularSection) {
    let ea: Vec<i64> = sec_a.iter().collect();
    let eb: Vec<i64> = sec_b.iter().collect();
    assert_eq!(ea.len(), eb.len());
    for (ia, ib) in ea.iter().zip(&eb) {
        a[*ia as usize] = b[*ib as usize];
    }
}

fn random_case(rng: &mut bcag_harness::rng::Rng) -> (i64, i64, i64, i64, i64, i64, i64, i64) {
    let p = rng.random_range(1..=6);
    let k_a = rng.random_range(1..=10);
    let k_b = rng.random_range(1..=10);
    let c = rng.random_range(1..=40); // shared element count
    let l_a = rng.random_range(0..=25);
    let s_a = rng.random_range(1..=9);
    let l_b = rng.random_range(0..=25);
    let s_b = rng.random_range(1..=9);
    (p, k_a, k_b, c, l_a, s_a, l_b, s_b)
}

#[test]
fn batched_execute_matches_sequential_oracle_randomized() {
    let gen = prop::from_fn(random_case);
    let cfg = prop::Config {
        cases: 60,
        ..Default::default()
    };
    prop::check_with(
        &cfg,
        "batched execute == sequential oracle",
        &gen,
        |&(p, k_a, k_b, c, l_a, s_a, l_b, s_b)| {
            let sec_a = RegularSection::new(l_a, l_a + s_a * (c - 1), s_a).unwrap();
            let sec_b = RegularSection::new(l_b, l_b + s_b * (c - 1), s_b).unwrap();
            let n_a = sec_a.normalized().hi + 1;
            let n_b = sec_b.normalized().hi + 1;
            let bg: Vec<i64> = (0..n_b).map(|i| 10_000 + 3 * i).collect();
            let b = DistArray::from_global(p, k_b, &bg).unwrap();
            let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();

            let mut expect = vec![-1i64; n_a as usize];
            seq_assign(&mut expect, &sec_a, &bg, &sec_b);

            for mode in [ExecMode::Batched, ExecMode::PerElement] {
                let mut a = DistArray::new(p, k_a, n_a, -1i64).unwrap();
                sched.execute_with(&mut a, &b, mode).unwrap();
                assert_eq!(
                    a.to_global(),
                    expect,
                    "mode={} p={p} k_a={k_a} k_b={k_b} sec_a={l_a}:{}:{s_a} sec_b={l_b}:{}:{s_b}",
                    mode.name(),
                    sec_a.u,
                    sec_b.u,
                );
            }
        },
    );
}

/// Runs one execution under tracing and returns the counter totals
/// `(elements_moved, elements_nonlocal, messages_sent, bytes_packed)`.
fn traced_totals(
    sched: &CommSchedule,
    p: i64,
    k_a: i64,
    k_b: i64,
    n_a: i64,
    n_b: i64,
    mode: ExecMode,
) -> (u64, u64, u64, u64) {
    let bg: Vec<i64> = (0..n_b).collect();
    let b = DistArray::from_global(p, k_b, &bg).unwrap();
    let mut a = DistArray::new(p, k_a, n_a, 0i64).unwrap();
    let (result, trace) = bcag_trace::capture(|| sched.execute_with(&mut a, &b, mode));
    result.unwrap();
    (
        trace.counter_total("elements_moved"),
        trace.counter_total("elements_nonlocal"),
        trace.counter_total("messages_sent"),
        trace.counter_total("bytes_packed"),
    )
}

#[test]
fn counter_totals_are_mode_independent_randomized() {
    let gen = prop::from_fn(random_case);
    let cfg = prop::Config {
        cases: 30,
        ..Default::default()
    };
    prop::check_with(
        &cfg,
        "trace counter totals unchanged by batching",
        &gen,
        |&(p, k_a, k_b, c, l_a, s_a, l_b, s_b)| {
            let sec_a = RegularSection::new(l_a, l_a + s_a * (c - 1), s_a).unwrap();
            let sec_b = RegularSection::new(l_b, l_b + s_b * (c - 1), s_b).unwrap();
            let n_a = sec_a.normalized().hi + 1;
            let n_b = sec_b.normalized().hi + 1;
            let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            let batched = traced_totals(&sched, p, k_a, k_b, n_a, n_b, ExecMode::Batched);
            let per_elem = traced_totals(&sched, p, k_a, k_b, n_a, n_b, ExecMode::PerElement);
            assert_eq!(batched, per_elem, "p={p} k_a={k_a} k_b={k_b}");
        },
    );
}

#[test]
fn messages_sent_equals_nonempty_nonlocal_pairs() {
    // Pinned identity: the batched engine sends exactly one message per
    // non-empty (src, dst != src) pair, and the counter records exactly
    // that — no more, no fewer.
    for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
        (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
        (3, 5, 5, 0, 0, 1, 1, 100),
        (2, 4, 8, 7, 3, 9, 5, 40),
        (5, 2, 3, 0, 11, 13, 2, 77),
        (4, 8, 8, 0, 0, 1, 1, 256), // identity copy: zero messages
    ] {
        let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
        let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
        let n_a = sec_a.normalized().hi + 1;
        let n_b = sec_b.normalized().hi + 1;
        let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
        let (_, _, messages, _) = traced_totals(&sched, p, k_a, k_b, n_a, n_b, ExecMode::Batched);
        assert_eq!(
            messages,
            sched.nonempty_nonlocal_pairs() as u64,
            "p={p} k_a={k_a} k_b={k_b}"
        );
    }
}

#[test]
fn schedule_cache_counters_are_traced() {
    // Key shapes unique to this test so the first lookup is a miss and the
    // second a hit, regardless of what other tests in this process did.
    let sec_a = RegularSection::new(5, 1930, 35).unwrap();
    let sec_b = RegularSection::new(9, 1934, 35).unwrap();
    let ((), trace) = bcag_trace::capture(|| {
        let first = cache::schedule(
            4,
            14,
            &sec_a,
            15,
            &sec_b,
            Method::Lattice,
            ExecMode::Batched,
            TransportKind::Mpsc,
        )
        .unwrap();
        let second = cache::schedule(
            4,
            14,
            &sec_a,
            15,
            &sec_b,
            Method::Lattice,
            ExecMode::Batched,
            TransportKind::Mpsc,
        )
        .unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &second));
    });
    assert_eq!(trace.counter_total("schedule_cache_misses"), 1);
    assert_eq!(trace.counter_total("schedule_cache_hits"), 1);
}
