//! Pooled vs scoped launch: the resident worker pool must be invisible.
//!
//! [`LaunchMode::Pooled`] changes *where* node programs run (resident
//! worker threads fed through a dispatch/epoch barrier) but must not
//! change anything observable: array contents and every deterministic
//! trace counter total have to match the per-call `thread::scope` path
//! exactly. These tests pin that over randomized layouts and a rotating
//! set of payload types, and check that a panicking node program poisons
//! the epoch cleanly — re-raised on the dispatcher, pool still usable —
//! instead of hanging the fabric.
//!
//! Timing counters (`*_ns`) and `pool_buffer_reuses` are deliberately
//! excluded from the comparison: wall-clock differs per run, and arena
//! recycling is the one counter that *should* differ between modes.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use bcag_core::section::RegularSection;
use bcag_harness::prop;
use bcag_spmd::{CommSchedule, DistArray, ExecMode, LaunchMode, Machine, PackValue};

/// `(p, k_a, k_b, count, l_a, s_a, l_b, s_b, type_sel)`.
type Case = (i64, i64, i64, i64, i64, i64, i64, i64, i64);

fn random_case(rng: &mut bcag_harness::rng::Rng) -> Case {
    let p = rng.random_range(1..=6);
    let k_a = rng.random_range(1..=10);
    let k_b = rng.random_range(1..=10);
    let c = rng.random_range(1..=40);
    let l_a = rng.random_range(0..=25);
    let s_a = rng.random_range(1..=9);
    let l_b = rng.random_range(0..=25);
    let s_b = rng.random_range(1..=9);
    let type_sel = rng.random_range(0..=4);
    (p, k_a, k_b, c, l_a, s_a, l_b, s_b, type_sel)
}

/// The deterministic counter totals of one execution: `(elements_moved,
/// elements_nonlocal, messages_sent, bytes_packed)`.
type Totals = (u64, u64, u64, u64);

/// Runs `A(sec_a) = B(sec_b)` once under `launch` and returns the final
/// global contents plus the deterministic counter totals.
fn run_once<T, F>(
    sched: &CommSchedule,
    p: i64,
    k_a: i64,
    k_b: i64,
    sec_a: &RegularSection,
    sec_b: &RegularSection,
    mode: ExecMode,
    launch: LaunchMode,
    make: &F,
) -> (Vec<T>, Totals)
where
    T: PackValue + Debug + PartialEq,
    F: Fn(i64) -> T,
{
    let n_a = sec_a.normalized().hi + 1;
    let n_b = sec_b.normalized().hi + 1;
    let bg: Vec<T> = (0..n_b).map(make).collect();
    let b = DistArray::from_global(p, k_b, &bg).unwrap();
    let mut a = DistArray::new(p, k_a, n_a, make(-1)).unwrap();
    let (result, trace) = bcag_trace::capture(|| sched.execute_launched(&mut a, &b, mode, launch));
    result.unwrap();
    (
        a.to_global(),
        (
            trace.counter_total("elements_moved"),
            trace.counter_total("elements_nonlocal"),
            trace.counter_total("messages_sent"),
            trace.counter_total("bytes_packed"),
        ),
    )
}

/// Scoped execution is the oracle; pooled must match it bit for bit in
/// contents and in every deterministic counter, for both exec modes.
fn check_case<T, F>(case: &Case, make: F)
where
    T: PackValue + Debug + PartialEq,
    F: Fn(i64) -> T,
{
    let &(p, k_a, k_b, c, l_a, s_a, l_b, s_b, _) = case;
    let sec_a = RegularSection::new(l_a, l_a + s_a * (c - 1), s_a).unwrap();
    let sec_b = RegularSection::new(l_b, l_b + s_b * (c - 1), s_b).unwrap();
    let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
    for mode in [ExecMode::Batched, ExecMode::PerElement] {
        let (scoped_g, scoped_totals) = run_once(
            &sched,
            p,
            k_a,
            k_b,
            &sec_a,
            &sec_b,
            mode,
            LaunchMode::Scoped,
            &make,
        );
        let (pooled_g, pooled_totals) = run_once(
            &sched,
            p,
            k_a,
            k_b,
            &sec_a,
            &sec_b,
            mode,
            LaunchMode::Pooled,
            &make,
        );
        let ctx = format!(
            "mode={} p={p} k_a={k_a} k_b={k_b} sec_a={l_a}:{}:{s_a} sec_b={l_b}:{}:{s_b}",
            mode.name(),
            sec_a.u,
            sec_b.u,
        );
        assert_eq!(pooled_g, scoped_g, "contents diverged: {ctx}");
        assert_eq!(pooled_totals, scoped_totals, "counters diverged: {ctx}");
    }
}

#[test]
fn pooled_matches_scoped_oracle_randomized() {
    let gen = prop::from_fn(random_case);
    let cfg = prop::Config {
        cases: 60,
        ..Default::default()
    };
    prop::check_with(
        &cfg,
        "pooled == scoped (contents + counter totals)",
        &gen,
        |case| match case.8 {
            0 => check_case(case, |i| 10_000 + 3 * i),
            1 => check_case(case, |i| i as f64 * 0.5 - 7.0),
            2 => check_case(case, |i| (i & 0xff) as u8),
            3 => check_case(case, |i| [i as f64, -i as f64, 0.25 * i as f64, 1.0]),
            _ => check_case(case, |i| format!("v{i}")),
        },
    );
}

#[test]
fn pooled_matches_scoped_on_degenerate_layouts() {
    // Edge shapes the generator rarely hits: single node, k = 1 fine
    // cyclic, one giant block, single-element sections.
    for case in [
        (1i64, 1i64, 1i64, 5i64, 0i64, 1i64, 0i64, 1i64, 0i64),
        (6, 1, 1, 30, 0, 1, 3, 2, 0),
        (4, 100, 1, 20, 0, 1, 0, 5, 0),
        (3, 2, 9, 1, 7, 3, 11, 4, 0),
    ] {
        check_case(&case, |i| 100 + i);
    }
}

#[test]
fn panic_in_pooled_node_is_reraised_and_pool_survives() {
    let machine = Machine::with_pool(3);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        machine.run_collect(|m| {
            if m == 1 {
                panic!("node boom");
            }
            m
        })
    }));
    let payload = unwound.expect_err("node panic must re-raise on the dispatcher");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "node boom");

    // The epoch was poisoned and drained; the same resident pool keeps
    // serving later launches with no hang and no stale envelopes.
    assert_eq!(machine.run_collect(|m| m * 2), vec![0, 2, 4]);
    let mut locals: Vec<Vec<i64>> = vec![vec![0; 4]; 3];
    machine.run(&mut locals, |m, local| local[0] = m as i64 + 10);
    assert_eq!(
        locals.iter().map(|l| l[0]).collect::<Vec<_>>(),
        vec![10, 11, 12]
    );
}

#[test]
fn panic_mid_exchange_does_not_hang_per_element_receives() {
    // A node program that dies before sending what a peer is counting on:
    // the peer's typed receive must abort via the poison check instead of
    // blocking forever. Machine-level statement: node 0 panics while node
    // 1 waits on it through a comm schedule executed inside the pool.
    let sec = RegularSection::new(0, 59, 1).unwrap();
    let sched = CommSchedule::build_lattice(2, 3, &sec, 7, &sec).unwrap();
    let bg: Vec<i64> = (0..60).collect();
    let b = DistArray::from_global(2, 7, &bg).unwrap();
    let mut a = DistArray::new(2, 3, 60, 0i64).unwrap();
    // Sanity: the schedule itself executes fine pooled, per-element.
    sched
        .execute_launched(&mut a, &b, ExecMode::PerElement, LaunchMode::Pooled)
        .unwrap();
    assert_eq!(a.to_global(), bg);

    // Now poison an epoch on the same pool and re-run: the pool must have
    // recovered fully for the per-element protocol to complete again.
    let machine = Machine::with_pool(2);
    let unwound = catch_unwind(AssertUnwindSafe(|| {
        machine.run_collect(|m| {
            if m == 0 {
                panic!("early exit");
            }
            m
        })
    }));
    assert!(unwound.is_err());
    let mut a2 = DistArray::new(2, 3, 60, 0i64).unwrap();
    sched
        .execute_launched(&mut a2, &b, ExecMode::PerElement, LaunchMode::Pooled)
        .unwrap();
    assert_eq!(a2.to_global(), bg);
}
