//! Randomized differential suite: self-tuning dispatch vs forced modes.
//!
//! The tuner ([`bcag_core::tune`]) picks pack strategy, code shape and
//! transfer blocking from measured line utilization — but its promise is
//! purely about speed: every decision must be bit-exact with both forced
//! modes. These properties draw random layouts and sections, run the
//! tuned path against forced `Runs` and forced `PerElement` (pack and
//! unpack, element types of three widths), run whole statements under
//! `TuneMode::Auto` vs `TuneMode::Fixed` across transports and both
//! executors, force blocking with a shrunken L2 on a >L2 transfer, and
//! pin the decision function's determinism (the cache-safety property).

use std::sync::Mutex;

use bcag_core::locality::analyze_lines;
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_core::tune::{self, TuneMode};
use bcag_harness::prop::{self, Config};
use bcag_harness::rng::Rng;
use bcag_spmd::fuse::{self, assign_fused_on};
use bcag_spmd::pack::{pack_with_buf_mode, unpack_mode, PackMode};
use bcag_spmd::pool::LaunchMode;
use bcag_spmd::{assign_expr, set_default_fused, DistArray, FusedMode, TransportKind};

/// The tune/fuse defaults and the resolved L2 size are process-global;
/// every test that flips one serializes on this lock (other test
/// binaries are separate processes).
static TUNE_LOCK: Mutex<()> = Mutex::new(());

fn lock_tune() -> std::sync::MutexGuard<'static, ()> {
    TUNE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` under the given tune mode, restoring the previous default
/// afterwards (caller holds [`TUNE_LOCK`]).
fn with_tune<R>(mode: TuneMode, f: impl FnOnce() -> R) -> R {
    let before = tune::default_tune();
    tune::set_default_tune(mode);
    let r = f();
    tune::set_default_tune(before);
    r
}

/// One random pack shape: a layout plus a section, skewed toward the
/// strided/sparse structures where tuned dispatch actually flips modes.
#[derive(Debug, Clone)]
struct PackCase {
    p: i64,
    k: i64,
    n: i64,
    sec: RegularSection,
}

fn random_pack_case(rng: &mut Rng) -> PackCase {
    let p = rng.random_range(1..=4);
    let k = rng.random_range(1..=12);
    let count = rng.random_range(1..=60);
    // Strides past k produce the gap-table structures (s = k+1 pair
    // runs, wide uniform gaps) whose decisions differ from dense.
    let stride = rng.random_range(1..=17);
    let lo = rng.random_range(0..=19);
    let hi = lo + (count - 1) * stride;
    let n = hi + 1 + rng.random_range(0..=7);
    PackCase {
        p,
        k,
        n,
        sec: RegularSection::new(lo, hi, stride).unwrap(),
    }
}

/// Packs every node's share under all three modes and asserts identical
/// buffers; then unpacks one buffer through each mode into separate
/// destination arrays and asserts identical global images.
fn pack_differential<T>(case: &PackCase, value: impl Fn(i64) -> T)
where
    T: bcag_spmd::PackValue + std::fmt::Debug + PartialEq + Default,
{
    let base: Vec<T> = (0..case.n).map(&value).collect();
    let arr = DistArray::from_global(case.p, case.k, &base).unwrap();
    let modes = [PackMode::Runs, PackMode::PerElement, PackMode::Tuned];
    for m in 0..case.p {
        let mut bufs: Vec<Vec<T>> = Vec::new();
        for mode in modes {
            let mut out = Vec::new();
            pack_with_buf_mode(&arr, &case.sec, m, Method::Lattice, mode, &mut out).unwrap();
            bufs.push(out);
        }
        assert_eq!(bufs[0], bufs[1], "runs vs per-element pack, node {m}");
        assert_eq!(bufs[0], bufs[2], "runs vs tuned pack, node {m}");
        // Unpacking the same buffer through each mode must land the
        // same elements at the same addresses.
        let fill: Vec<T> = (0..case.n).map(|_| T::default()).collect();
        let mut globals: Vec<Vec<T>> = Vec::new();
        for mode in modes {
            let mut dst = DistArray::from_global(case.p, case.k, &fill).unwrap();
            unpack_mode(&mut dst, &case.sec, m, Method::Lattice, mode, &bufs[0]).unwrap();
            globals.push(dst.to_global());
        }
        assert_eq!(
            globals[0], globals[1],
            "runs vs per-element unpack, node {m}"
        );
        assert_eq!(globals[0], globals[2], "runs vs tuned unpack, node {m}");
    }
}

#[test]
fn tuned_pack_matches_forced_modes_i64() {
    prop::check("tune-pack-i64", &prop::from_fn(random_pack_case), |case| {
        pack_differential(case, |i| i * 37 - 11)
    });
}

#[test]
fn tuned_pack_matches_forced_modes_u8() {
    let cfg = Config {
        cases: 64,
        ..Config::default()
    };
    prop::check_with(
        &cfg,
        "tune-pack-u8",
        &prop::from_fn(random_pack_case),
        |case| pack_differential(case, |i| (i * 13 % 251) as u8),
    );
}

#[test]
fn tuned_pack_matches_forced_modes_f64x4() {
    let cfg = Config {
        cases: 48,
        ..Config::default()
    };
    prop::check_with(
        &cfg,
        "tune-pack-f64x4",
        &prop::from_fn(random_pack_case),
        |case| {
            pack_differential(case, |i| {
                [i as f64, i as f64 * 0.5, -(i as f64), 1.0 / (i + 1) as f64]
            })
        },
    );
}

/// One random statement shape for the Auto-vs-Fixed differential.
#[derive(Debug, Clone)]
struct StmtCase {
    p: i64,
    k_a: i64,
    k_b: i64,
    n: i64,
    sec_a: RegularSection,
    sec_b: RegularSection,
    kind: TransportKind,
}

fn random_stmt_case(rng: &mut Rng) -> StmtCase {
    let p = rng.random_range(1..=4);
    let k_a = rng.random_range(1..=10);
    let k_b = rng.random_range(1..=10);
    let count = rng.random_range(1..=48);
    let section = |rng: &mut Rng| {
        let stride = rng.random_range(1..=13);
        let lo = rng.random_range(0..=19);
        let hi = lo + (count - 1) * stride;
        (hi, RegularSection::new(lo, hi, stride).unwrap())
    };
    let (hi_a, sec_a) = section(rng);
    let (hi_b, sec_b) = section(rng);
    let n = hi_a.max(hi_b) + 1 + rng.random_range(0..=5);
    let kind = *rng.choice(&TransportKind::ALL);
    StmtCase {
        p,
        k_a,
        k_b,
        n,
        sec_a,
        sec_b,
        kind,
    }
}

/// Runs `A(sec_a) = 2·B(sec_b) + 0.25` under one tune mode through the
/// given executor and returns the global image.
fn run_stmt(case: &StmtCase, mode: TuneMode, fused: bool) -> Vec<f64> {
    let base: Vec<f64> = (0..case.n)
        .map(|i| (i * 7 % 97) as f64 * 0.5 - 9.0)
        .collect();
    let mut a = DistArray::from_global(case.p, case.k_a, &base).unwrap();
    let b_vals: Vec<f64> = (0..case.n).map(|i| (i * 11 % 89) as f64 * 0.25).collect();
    let b = DistArray::from_global(case.p, case.k_b, &b_vals).unwrap();
    let f = |args: &[f64]| 2.0 * args[0] + 0.25;
    with_tune(mode, || {
        if fused {
            assign_fused_on(
                &mut a,
                &case.sec_a,
                &[(&b, case.sec_b)],
                f,
                LaunchMode::Pooled,
                case.kind,
            )
            .unwrap();
        } else {
            set_default_fused(FusedMode::Off);
            let r = assign_expr(&mut a, &case.sec_a, &[(&b, case.sec_b)], f);
            set_default_fused(FusedMode::On);
            r.unwrap();
        }
    });
    a.to_global()
}

/// Whole statements — fused and interpreted — must compute bit-equal
/// images whether the tuner is honored (`Auto`) or the historical fixed
/// defaults run (`Fixed`), on every transport.
#[test]
fn tuned_statements_match_fixed_dispatch() {
    let _serial = lock_tune();
    let cfg = Config {
        cases: 48,
        ..Config::default()
    };
    prop::check_with(
        &cfg,
        "tune-stmt-auto-vs-fixed",
        &prop::from_fn(random_stmt_case),
        |case| {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            let fixed_fused = run_stmt(case, TuneMode::Fixed, true);
            let auto_fused = run_stmt(case, TuneMode::Auto, true);
            assert_eq!(bits(&fixed_fused), bits(&auto_fused), "fused: {case:?}");
            let fixed_interp = run_stmt(case, TuneMode::Fixed, false);
            let auto_interp = run_stmt(case, TuneMode::Auto, false);
            assert_eq!(bits(&fixed_interp), bits(&auto_interp), "interp: {case:?}");
            assert_eq!(
                bits(&fixed_fused),
                bits(&fixed_interp),
                "fused vs interp: {case:?}"
            );
        },
    );
}

/// Forces blocking with a 32 KiB L2 override on a >L2 f64 transfer
/// (comm-bearing and communication-free variants) and asserts the
/// blocked epochs stay bit-exact with the unblocked fixed path. Uses
/// section shapes unique to this test: decisions and programs are
/// cached per shape, so stale entries from other tests can't mask the
/// small-L2 compile.
#[test]
fn blocked_auto_statements_stay_bit_exact() {
    let _serial = lock_tune();
    let orig_l2 = tune::l2_bytes();
    tune::set_l2_bytes(32 * 1024);

    let n = 90_001i64;
    let sec = RegularSection::new(1, 88_887, 2).unwrap(); // 44 444 f64 ≈ 355 KiB ≫ 32 KiB
    let base: Vec<f64> = (0..n).map(|i| (i % 1013) as f64 * 0.125 - 3.0).collect();
    let f = |args: &[f64]| args[0] * 1.5 - 0.5;

    // Comm-bearing: k_a ≠ k_b redistributes, so the blocked sends and
    // the per-src block-cursor recv routing are exercised.
    for (k_a, k_b) in [(7i64, 5i64), (64, 64)] {
        let b = DistArray::from_global(3, k_b, &base).unwrap();
        let mut fixed = DistArray::from_global(3, k_a, &base).unwrap();
        with_tune(TuneMode::Fixed, || {
            assign_fused_on(
                &mut fixed,
                &sec,
                &[(&b, sec)],
                f,
                LaunchMode::Pooled,
                TransportKind::Mpsc,
            )
            .unwrap();
        });
        assert_eq!(
            fuse::last_blocked(),
            Some(false),
            "fixed mode must compile unblocked"
        );
        let mut auto = DistArray::from_global(3, k_a, &base).unwrap();
        with_tune(TuneMode::Auto, || {
            assign_fused_on(
                &mut auto,
                &sec,
                &[(&b, sec)],
                f,
                LaunchMode::Pooled,
                TransportKind::Mpsc,
            )
            .unwrap();
        });
        assert_eq!(
            fuse::last_blocked(),
            Some(true),
            "a {} KiB transfer against a 32 KiB L2 must block (k_a={k_a})",
            44_444 * 8 / 1024,
        );
        let (fg, ag) = (fixed.to_global(), auto.to_global());
        assert!(
            fg.iter().zip(&ag).all(|(a, b)| a.to_bits() == b.to_bits()),
            "blocked image diverges (k_a={k_a}, k_b={k_b})"
        );
    }

    tune::set_l2_bytes(orig_l2);
}

/// The cache-safety property, randomized: [`tune::decide_with`] is a
/// pure function — equal (stats, plan, element width, L2) always yield
/// the identical decision, so memoizing decisions beside their plans
/// can never serve a stale or divergent choice.
#[test]
fn decisions_are_deterministic_for_equal_inputs() {
    let gen = prop::from_fn(|rng: &mut Rng| {
        let k = rng.random_range(1..=16);
        let len = rng.random_range(1..=6) as usize;
        let gaps: Vec<i64> = (0..len).map(|_| rng.random_range(1..=(k + 9))).collect();
        let last = rng.random_range(100..=500_000);
        let eb = *rng.choice(&[1i64, 8, 32]) as usize;
        (gaps, last, eb)
    });
    prop::check("tune-decide-deterministic", &gen, |(gaps, last, eb)| {
        let plan = bcag_core::runs::RunPlan::compile(Some(0), *last, gaps);
        let stats = analyze_lines(&plan, *eb, tune::ANALYZE_BOUND);
        for l2 in [32 * 1024u64, 512 * 1024, 8 << 20] {
            let first = tune::decide_with(&stats, &plan, *eb, l2);
            let again = tune::decide_with(&stats.clone(), &plan, *eb, l2);
            assert_eq!(first, again, "same thread");
            let threaded = std::thread::scope(|s| {
                s.spawn(|| tune::decide_with(&stats, &plan, *eb, l2))
                    .join()
                    .unwrap()
            });
            assert_eq!(first, threaded, "across threads");
        }
    });
}
