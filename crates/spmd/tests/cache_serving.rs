//! Serving-path stress tests for the sharded schedule/plan cache:
//! randomized concurrent hammering of a small [`ShardedCache`] and the
//! occupancy-gauge contract of `cache::clear()`.
//!
//! The hammer is the concurrency oracle for the tentpole invariants:
//! under 16 threads of mixed hit/miss/evict traffic, (a) every `Arc`
//! returned for a key is pointer-identical *per build generation* —
//! single-flight plus shared handles mean a generation has exactly one
//! allocation, no matter how many threads raced on it — and (b) the
//! rolled-up counters are exact: `hits + misses == lookups`, with no
//! lookup dropped or double-counted by the shard bookkeeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use bcag_harness::Rng;
use bcag_spmd::cache::{self, ShardedCache};

/// Number of distinct keys the hammer draws from. Deliberately larger
/// than the store capacity so eviction churn runs throughout.
const KEYS: usize = 24;
const THREADS: usize = 16;
const LOOKUPS_PER_THREAD: usize = 400;

#[test]
fn concurrent_hammer_keeps_generations_and_counters_exact() {
    // Capacity 8 over 4 shards: 2 entries per shard, so the 24-key
    // workload constantly evicts while hot keys re-hit.
    let store: ShardedCache<u64, Arc<(u64, u64)>> = ShardedCache::new(8, 4);
    // Per-key build-generation counters: every build of key `k` gets a
    // fresh generation number, baked into the value.
    let generations: Vec<AtomicU64> = (0..KEYS).map(|_| AtomicU64::new(0)).collect();
    let gate = Barrier::new(THREADS);

    let per_thread: Vec<Vec<Arc<(u64, u64)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &store;
                let generations = &generations;
                let gate = &gate;
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(0xcafe + t as u64);
                    let mut got = Vec::with_capacity(LOOKUPS_PER_THREAD);
                    gate.wait();
                    for _ in 0..LOOKUPS_PER_THREAD {
                        // Skewed key choice: half the traffic on 4 hot
                        // keys (hits), the rest spread wide (misses and
                        // evictions).
                        let key = if rng.random_bool(0.5) {
                            rng.random_range(0..4) as u64
                        } else {
                            rng.random_range(0..KEYS as i64) as u64
                        };
                        let out = store
                            .get_or_try_build(key, || {
                                let generation =
                                    generations[key as usize].fetch_add(1, Ordering::Relaxed);
                                Ok::<_, ()>(Arc::new((key, generation)))
                            })
                            .unwrap();
                        assert_eq!(out.value.0, key, "value answers the looked-up key");
                        got.push(out.value);
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // (a) Pointer identity per generation: group every returned Arc by
    // (key, generation); each group must share one allocation.
    let mut by_generation: Vec<(u64, u64, Arc<(u64, u64)>)> = Vec::new();
    let mut lookups = 0u64;
    for got in &per_thread {
        lookups += got.len() as u64;
        for arc in got {
            let (key, generation) = **arc;
            match by_generation
                .iter()
                .find(|(k, g, _)| *k == key && *g == generation)
            {
                Some((_, _, first)) => assert!(
                    Arc::ptr_eq(first, arc),
                    "key {key} generation {generation}: two distinct allocations"
                ),
                None => by_generation.push((key, generation, Arc::clone(arc))),
            }
        }
    }
    // Single-flight sanity: the hammer saw far fewer builds than lookups.
    let builds: u64 = generations.iter().map(|g| g.load(Ordering::Relaxed)).sum();
    assert!(
        builds < lookups / 2,
        "{builds} builds for {lookups} lookups"
    );

    // (b) Counter exactness under concurrency.
    let st = store.stats();
    assert_eq!(
        st.hits + st.misses,
        lookups,
        "every lookup counted exactly once"
    );
    assert!(st.entries <= st.capacity);
    // Every build was triggered by a miss; the remaining misses joined
    // an in-progress flight (or found the value just-inserted) instead
    // of duplicating the build.
    assert!(
        st.misses >= builds,
        "misses {} < builds {builds}",
        st.misses
    );
}

#[test]
fn clear_emits_zeroed_occupancy_gauge() {
    use bcag_core::method::Method;
    use bcag_core::section::RegularSection;

    let ((), trace) = bcag_trace::capture(|| {
        bcag_trace::set_lane_label("cache-clear-test");
        // Populate, then clear: the timeline must end at zero occupancy,
        // not at whatever the last insert sampled.
        let sec = RegularSection::new(2, 902, 9).unwrap();
        let _ = cache::plans(3, 4, &sec, Method::Lattice).unwrap();
        cache::clear();
    });
    let lane = trace.lane("cache-clear-test").expect("recording lane");
    let last_entries = lane
        .samples
        .iter()
        .rev()
        .find(|s| s.name == "schedule_cache_entries")
        .expect("occupancy gauge sampled");
    assert_eq!(last_entries.value, 0, "clear() re-zeroes the gauge");
    // Per-shard occupancy gauges are zeroed too.
    let shard0 = lane
        .samples
        .iter()
        .rev()
        .find(|s| s.name.starts_with("schedule_cache_shard"))
        .expect("per-shard gauge sampled");
    assert_eq!(shard0.value, 0);
    assert_eq!(cache::stats().entries, 0);
}
