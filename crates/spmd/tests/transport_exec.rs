//! Cross-backend equivalence of the transport fabrics.
//!
//! The pluggable transports (`mpsc`, `shm`, `proc`) must be perfectly
//! interchangeable: identical array contents after any schedule
//! execution, and identical deterministic counter totals — the
//! transport byte counters are charged at the canonical wire size on
//! every backend precisely so this holds. This suite drives a
//! randomized sweep of layouts and payload types over all three
//! fabrics against a sequential oracle, plus the poison protocol
//! (panic propagation) on each backend.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bcag_core::section::RegularSection;
use bcag_spmd::pool::{self, LaunchMode};
use bcag_spmd::{CommSchedule, DistArray, ExecMode, TransportKind};

/// xorshift64*: deterministic layout generator, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: i64) -> i64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        ((self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as i64).rem_euclid(bound.max(1))
    }
}

/// A random `A(sec_a) = B(sec_b)` instance: machine size, two layouts,
/// two conforming sections, and array lengths covering them.
struct Layout {
    p: i64,
    k_a: i64,
    k_b: i64,
    sec_a: RegularSection,
    sec_b: RegularSection,
    n_a: i64,
    n_b: i64,
}

fn random_layout(rng: &mut Rng) -> Layout {
    let p = 1 + rng.next(8);
    let k_a = 1 + rng.next(16);
    let k_b = 1 + rng.next(16);
    let count = 1 + rng.next(120);
    let (l_a, s_a) = (rng.next(40), 1 + rng.next(7));
    let (l_b, s_b) = (rng.next(40), 1 + rng.next(7));
    let sec_a = RegularSection::new(l_a, l_a + (count - 1) * s_a, s_a).unwrap();
    let sec_b = RegularSection::new(l_b, l_b + (count - 1) * s_b, s_b).unwrap();
    Layout {
        p,
        k_a,
        k_b,
        n_a: sec_a.u + 1 + rng.next(16),
        n_b: sec_b.u + 1 + rng.next(16),
        sec_a,
        sec_b,
    }
}

/// Counters whose totals must be bit-identical across transports.
/// Timing counters (`recv_wait_ns`, `transport_park_ns`) and contention
/// counters (`ring_full_spins`) are inherently nondeterministic and are
/// deliberately absent.
const DETERMINISTIC: &[&str] = &[
    "elements_moved",
    "elements_nonlocal",
    "messages_sent",
    "bytes_packed",
    "transport_bytes_tx",
    "transport_bytes_rx",
];

/// Runs `A(sec_a) = B(sec_b)` over one transport under tracing, returns
/// the resulting global contents plus the deterministic counter totals.
fn run_one<T: bcag_spmd::PackValue + PartialEq + std::fmt::Debug>(
    layout: &Layout,
    kind: TransportKind,
    fill: &T,
    b_global: &[T],
) -> (Vec<T>, Vec<u64>) {
    let schedule = CommSchedule::build_lattice(
        layout.p,
        layout.k_a,
        &layout.sec_a,
        layout.k_b,
        &layout.sec_b,
    )
    .unwrap();
    let mut a = DistArray::new(layout.p, layout.k_a, layout.n_a, fill.clone()).unwrap();
    let b = DistArray::from_global(layout.p, layout.k_b, b_global).unwrap();
    let ((), trace) = bcag_trace::capture(|| {
        schedule
            .execute_transport(&mut a, &b, ExecMode::Batched, LaunchMode::Pooled, kind)
            .unwrap();
    });
    let totals = DETERMINISTIC
        .iter()
        .map(|name| trace.counter_total(name))
        .collect();
    (a.to_global(), totals)
}

/// The sequential oracle: plain global-index semantics of the
/// assignment, no distribution at all.
fn oracle<T: Clone>(layout: &Layout, fill: &T, b_global: &[T]) -> Vec<T> {
    let mut a = vec![fill.clone(); layout.n_a as usize];
    for t in 0..layout.sec_a.count() {
        let ia = (layout.sec_a.l + t * layout.sec_a.s) as usize;
        let ib = (layout.sec_b.l + t * layout.sec_b.s) as usize;
        a[ia] = b_global[ib].clone();
    }
    a
}

/// One layout, one payload type: all three transports must match the
/// oracle's contents and each other's deterministic counter totals.
fn check_layout<T: bcag_spmd::PackValue + PartialEq + std::fmt::Debug>(
    layout: &Layout,
    fill: T,
    value: impl Fn(i64) -> T,
) {
    let b_global: Vec<T> = (0..layout.n_b).map(value).collect();
    let expected = oracle(layout, &fill, &b_global);
    let mut reference: Option<Vec<u64>> = None;
    for kind in TransportKind::ALL {
        let (got, totals) = run_one(layout, kind, &fill, &b_global);
        assert_eq!(
            got,
            expected,
            "{} contents diverge at p={} k_a={} k_b={} sec_a={:?} sec_b={:?}",
            kind.name(),
            layout.p,
            layout.k_a,
            layout.k_b,
            layout.sec_a,
            layout.sec_b
        );
        match &reference {
            None => reference = Some(totals),
            Some(first) => assert_eq!(
                &totals,
                first,
                "{} counter totals diverge ({DETERMINISTIC:?}) at p={} k_a={} k_b={}",
                kind.name(),
                layout.p,
                layout.k_a,
                layout.k_b
            ),
        }
    }
}

#[test]
fn every_transport_matches_the_oracle_on_random_layouts() {
    // 64 random layouts, each exercised with every payload class: a
    // wide numeric, a 1-byte numeric, a fixed-width array (the wire
    // format's composite case), and a heap payload with no wire format
    // (the serialized fabric's boxed fallback).
    let mut rng = Rng(0xBCA6_5EED | 1);
    for round in 0..64 {
        let layout = random_layout(&mut rng);
        check_layout(&layout, -1i64, |i| 3 * i + 7);
        check_layout(&layout, 0u8, |i| (i % 251) as u8);
        check_layout(&layout, [0.0f64; 4], |i| {
            [i as f64, 0.5 * i as f64, -(i as f64), 1.0]
        });
        if round % 8 == 0 {
            check_layout(&layout, String::new(), |i| format!("v{i}"));
        }
    }
}

#[test]
fn poison_propagates_on_every_transport() {
    // One node panicking mid-exchange must release peers blocked in a
    // receive on every fabric — the launch panics instead of hanging.
    for kind in TransportKind::ALL {
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool::launch_with(4, LaunchMode::Scoped, kind, |m, ctx| {
                if m == 1 {
                    panic!("node job exploded on {}", ctx.transport().name());
                }
                if m == 2 {
                    // Blocked on data that never comes: node 1's poison
                    // must release this receive.
                    let _ = ctx.recv();
                }
            });
        }));
        assert!(
            err.is_err(),
            "{}: launch must re-raise the node panic",
            kind.name()
        );
    }
}

#[test]
fn poison_propagates_on_the_resident_pool_per_transport() {
    // The pooled path goes through dispatch + epoch barrier rather than
    // scoped threads; the poison protocol must behave identically, and
    // the pool must stay usable afterwards.
    for kind in TransportKind::ALL {
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool::launch_with(4, LaunchMode::Pooled, kind, |m, ctx| {
                if m == 0 {
                    panic!("node job exploded");
                }
                if m == 3 {
                    let _ = ctx.recv();
                }
            });
        }));
        assert!(err.is_err(), "{}: pooled launch re-raises", kind.name());
        // Reuse after the panic: a clean exchange still works.
        let layout = Layout {
            p: 4,
            k_a: 3,
            k_b: 5,
            sec_a: RegularSection::new(0, 99, 1).unwrap(),
            sec_b: RegularSection::new(0, 99, 1).unwrap(),
            n_a: 100,
            n_b: 100,
        };
        let b_global: Vec<i64> = (0..100).collect();
        let (got, _) = run_one(&layout, kind, &0i64, &b_global);
        assert_eq!(got, b_global, "{}: pool unusable after poison", kind.name());
    }
}
