//! Exactness obligation of the run-coalescing optimization.
//!
//! A [`bcag_core::runs::RunPlan`] is only an *encoding* of the access
//! sequence — folding the gap table into constant-gap runs must never
//! change which addresses are visited or in what order. These tests pin
//! that exactly, over randomized layouts: the run plan's expansion equals
//! the element-by-element gap-table walk, and every run-coalesced client
//! (pack, unpack, assign) produces bit-identical results and identical
//! element counter totals to its per-element twin.

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_harness::prop;
use bcag_spmd::assign::{apply_section, plan_section};
use bcag_spmd::codeshapes::CodeShape;
use bcag_spmd::darray::DistArray;
use bcag_spmd::pack::{pack_with_buf_mode, unpack_mode, PackMode};

/// Element-by-element reference walk of `(start, last, delta_m)` — the
/// oracle the run plan must reproduce address-for-address.
fn walk(start: Option<i64>, last: i64, delta_m: &[i64]) -> Vec<i64> {
    let Some(start) = start else { return vec![] };
    let mut out = Vec::new();
    let mut addr = start;
    let mut i = 0usize;
    while addr <= last {
        out.push(addr);
        if delta_m.is_empty() {
            break;
        }
        addr += delta_m[i];
        i += 1;
        if i == delta_m.len() {
            i = 0;
        }
    }
    out
}

/// Random `(p, k, section, n)` with the section guaranteed in-bounds.
fn layout_gen() -> impl prop::Gen<Value = (i64, i64, i64, i64, i64, i64)> {
    prop::from_fn(|rng| {
        let p = rng.random_range(1..=8);
        let k = rng.random_range(1..=24);
        let l = rng.random_range(0..=40);
        let s = rng.random_range(1..=13);
        let count = rng.random_range(0..=160);
        let u = if count == 0 {
            l - 1
        } else {
            l + s * (count - 1)
        };
        let n = u.max(l) + 1 + rng.random_range(0..=10);
        (p, k, l, u, s, n)
    })
}

#[test]
fn run_plan_expansion_equals_gap_table_walk() {
    prop::check(
        "runplan-expansion-oracle",
        &layout_gen(),
        |&(p, k, l, u, s, _n)| {
            let sec = RegularSection::new(l, u, s).unwrap();
            let plans = plan_section(p, k, &sec, Method::Lattice).unwrap();
            for (m, plan) in plans.iter().enumerate() {
                let expect = walk(plan.start, plan.last, &plan.delta_m);
                assert_eq!(
                    plan.runs.expand(),
                    expect,
                    "p={p} k={k} sec=({l}:{u}:{s}) m={m}"
                );
                assert_eq!(plan.runs.count() as usize, expect.len());
            }
        },
    );
}

#[test]
fn pack_unpack_modes_agree_bit_for_bit() {
    prop::check(
        "pack-mode-equivalence",
        &layout_gen(),
        |&(p, k, l, u, s, n)| {
            let sec = RegularSection::new(l, u, s).unwrap();
            let data: Vec<i64> = (0..n).map(|i| i * 1_000_003 + 7).collect();
            let arr = DistArray::from_global(p, k, &data).unwrap();
            let mut by_runs = Vec::new();
            let mut by_elem = Vec::new();
            let mut rebuilt_runs = DistArray::new(p, k, n, -1i64).unwrap();
            let mut rebuilt_elem = DistArray::new(p, k, n, -1i64).unwrap();
            let mut packed_runs = 0u64;
            let mut packed_elem = 0u64;
            for m in 0..p {
                let (r1, t1) = bcag_trace::capture(|| {
                    pack_with_buf_mode(
                        &arr,
                        &sec,
                        m,
                        Method::Lattice,
                        PackMode::Runs,
                        &mut by_runs,
                    )
                    .unwrap();
                    unpack_mode(
                        &mut rebuilt_runs,
                        &sec,
                        m,
                        Method::Lattice,
                        PackMode::Runs,
                        &by_runs,
                    )
                });
                r1.unwrap();
                packed_runs += t1.counter_total("elements_packed");
                assert_eq!(t1.counter_total("elements_unpacked"), by_runs.len() as u64);
                let (r2, t2) = bcag_trace::capture(|| {
                    pack_with_buf_mode(
                        &arr,
                        &sec,
                        m,
                        Method::Lattice,
                        PackMode::PerElement,
                        &mut by_elem,
                    )
                    .unwrap();
                    unpack_mode(
                        &mut rebuilt_elem,
                        &sec,
                        m,
                        Method::Lattice,
                        PackMode::PerElement,
                        &by_elem,
                    )
                });
                r2.unwrap();
                packed_elem += t2.counter_total("elements_packed");
                assert_eq!(by_runs, by_elem, "packed buffers differ, m={m}");
            }
            assert_eq!(packed_runs, packed_elem, "element counter totals differ");
            assert_eq!(packed_runs as i64, sec.count());
            assert_eq!(rebuilt_runs.to_global(), rebuilt_elem.to_global());
        },
    );
}

#[test]
fn run_loop_assign_matches_reference_shape() {
    prop::check(
        "assign-shape-equivalence",
        &layout_gen(),
        |&(p, k, l, u, s, n)| {
            let sec = RegularSection::new(l, u, s).unwrap();
            let data: Vec<i64> = (0..n).map(|i| i % 89).collect();
            let mut by_runs = DistArray::from_global(p, k, &data).unwrap();
            let mut by_branch = by_runs.clone();
            apply_section(
                &mut by_runs,
                &sec,
                Method::Lattice,
                CodeShape::RunLoop,
                |x| *x = *x * 3 + 1,
            )
            .unwrap();
            apply_section(
                &mut by_branch,
                &sec,
                Method::Lattice,
                CodeShape::BranchLoop,
                |x| *x = *x * 3 + 1,
            )
            .unwrap();
            assert_eq!(by_runs.to_global(), by_branch.to_global());
        },
    );
}

// ---- Degenerate shapes and error paths (satellite: edge-case tests) ----

#[test]
fn unpack_rejects_buffer_too_short() {
    let mut arr = DistArray::new(4, 8, 200, 0i64).unwrap();
    let sec = RegularSection::new(0, 199, 3).unwrap();
    let buf = bcag_spmd::pack::pack(&arr, &sec, 2, Method::Lattice).unwrap();
    assert!(buf.len() > 1);
    let err = unpack_mode(
        &mut arr,
        &sec,
        2,
        Method::Lattice,
        PackMode::Runs,
        &buf[..buf.len() - 1],
    );
    assert!(err.is_err());
}

#[test]
fn unpack_rejects_buffer_too_long() {
    let mut arr = DistArray::new(4, 8, 200, 0i64).unwrap();
    let sec = RegularSection::new(0, 199, 3).unwrap();
    let mut buf = bcag_spmd::pack::pack(&arr, &sec, 2, Method::Lattice).unwrap();
    buf.push(0);
    for mode in [PackMode::Runs, PackMode::PerElement] {
        assert!(unpack_mode(&mut arr, &sec, 2, Method::Lattice, mode, &buf).is_err());
    }
}

#[test]
fn unpack_rejects_nonempty_buffer_for_empty_owner() {
    // cyclic(1) on p=2: processor 1 owns no even-indexed element.
    let mut arr = DistArray::new(2, 1, 40, 0i64).unwrap();
    let sec = RegularSection::new(0, 39, 2).unwrap();
    assert!(unpack_mode(&mut arr, &sec, 1, Method::Lattice, PackMode::Runs, &[]).is_ok());
    assert!(unpack_mode(&mut arr, &sec, 1, Method::Lattice, PackMode::Runs, &[5]).is_err());
}

#[test]
fn degenerate_plans_empty_section_and_single_element() {
    // Empty section: every node's plan is empty, expansion is empty.
    let empty = RegularSection::new(30, 10, 3).unwrap();
    for plan in plan_section(4, 8, &empty, Method::Lattice).unwrap() {
        assert!(plan.runs.is_empty());
        assert_eq!(plan.runs.count(), 0);
        assert_eq!(plan.runs.expand(), Vec::<i64>::new());
    }
    // Single-element section: exactly one node holds exactly one address.
    let single = RegularSection::new(55, 55, 3).unwrap();
    let plans = plan_section(4, 8, &single, Method::Lattice).unwrap();
    let nonempty: Vec<_> = plans.iter().filter(|pl| !pl.runs.is_empty()).collect();
    assert_eq!(nonempty.len(), 1);
    assert_eq!(nonempty[0].runs.count(), 1);
    assert_eq!(nonempty[0].runs.expand(), vec![nonempty[0].start.unwrap()]);
    // delta_m empty (one element per node at most): k=1, count <= p.
    let tiny = RegularSection::new(0, 2, 1).unwrap();
    for plan in plan_section(4, 1, &tiny, Method::Lattice).unwrap() {
        let expect = walk(plan.start, plan.last, &plan.delta_m);
        assert_eq!(plan.runs.expand(), expect);
    }
}
