//! Trace counters vs closed forms.
//!
//! The instrumentation in `comm.rs` and `pack.rs` counts what the node
//! programs *actually do*; the stats module computes the same quantities in
//! closed form without running anything. These tests pin the two together:
//! every traced total must equal its closed-form twin exactly.

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_harness::prop;
use bcag_spmd::pack::pack;
use bcag_spmd::stats::{comm_stats, load_stats, per_node_packed_from_trace};
use bcag_spmd::{CommSchedule, DistArray, Machine};

/// Executes `A(sec_a) = B(sec_b)` under tracing and checks every counter
/// total against the schedule's closed forms.
fn check_execute_counters(
    p: i64,
    k_a: i64,
    sec_a: &RegularSection,
    k_b: i64,
    sec_b: &RegularSection,
) {
    let sched = CommSchedule::build_lattice(p, k_a, sec_a, k_b, sec_b).unwrap();
    let n_a = sec_a.normalized().hi + 1;
    let n_b = sec_b.normalized().hi + 1;
    let src: Vec<f64> = (0..n_b.max(1)).map(|i| i as f64).collect();
    let b = DistArray::from_global(p, k_b, &src).unwrap();
    let mut a = DistArray::new(p, k_a, n_a.max(1), 0.0f64).unwrap();

    let (result, trace) = bcag_trace::capture(|| sched.execute(&mut a, &b));
    result.unwrap();

    let total = sched.total_elements() as u64;
    let nonlocal = sched.nonlocal_elements() as u64;
    let stats = comm_stats(p, k_a, sec_a, k_b, sec_b).unwrap();

    assert_eq!(trace.counter_total("elements_moved"), total);
    assert_eq!(trace.counter_total("elements_nonlocal"), nonlocal);
    assert_eq!(trace.counter_total("messages_sent"), stats.messages as u64);
    assert_eq!(
        trace.counter_total("bytes_packed"),
        total * std::mem::size_of::<f64>() as u64
    );
    // The per-node breakdown sums back to the totals.
    let per_node: u64 = trace.per_node_counter("elements_moved").iter().sum();
    assert_eq!(per_node, total);
}

#[test]
fn execute_counters_match_closed_forms_worked_example() {
    // The paper's (p=4, k=8, 4:301:9) section copied from a cyclic(5) source.
    let sec_a = RegularSection::new(4, 301, 9).unwrap();
    let sec_b = RegularSection::new(2, 68, 2).unwrap();
    // Equal counts: 34 each.
    let sec_a = RegularSection::new(sec_a.l, 4 + 9 * 33, 9).unwrap();
    check_execute_counters(4, 8, &sec_a, 5, &sec_b);
}

#[test]
fn execute_counters_match_closed_forms_identity_copy() {
    // Same layout, same section: everything local, zero messages.
    let sec = RegularSection::new(0, 255, 1).unwrap();
    let sched = CommSchedule::build_lattice(4, 8, &sec, 8, &sec).unwrap();
    let src: Vec<i64> = (0..256).collect();
    let b = DistArray::from_global(4, 8, &src).unwrap();
    let mut a = DistArray::new(4, 8, 256, 0i64).unwrap();
    let (result, trace) = bcag_trace::capture(|| sched.execute(&mut a, &b));
    result.unwrap();
    assert_eq!(trace.counter_total("elements_moved"), 256);
    assert_eq!(trace.counter_total("elements_nonlocal"), 0);
    assert_eq!(trace.counter_total("messages_sent"), 0);
    assert_eq!(a.to_global(), src);
}

#[test]
fn execute_counters_match_closed_forms_randomized() {
    let gen = prop::from_fn(|rng| {
        let p = rng.random_range(1..=5);
        let k_a = rng.random_range(1..=10);
        let k_b = rng.random_range(1..=10);
        let c = rng.random_range(1..=30); // shared element count
        let l_a = rng.random_range(0..=20);
        let s_a = rng.random_range(1..=9);
        let l_b = rng.random_range(0..=20);
        let s_b = rng.random_range(1..=9);
        (p, k_a, k_b, c, l_a, s_a, l_b, s_b)
    });
    let cfg = prop::Config {
        cases: 40,
        ..Default::default()
    };
    prop::check_with(
        &cfg,
        "execute counters == closed forms",
        &gen,
        |&(p, k_a, k_b, c, l_a, s_a, l_b, s_b)| {
            let sec_a = RegularSection::new(l_a, l_a + s_a * (c - 1), s_a).unwrap();
            let sec_b = RegularSection::new(l_b, l_b + s_b * (c - 1), s_b).unwrap();
            check_execute_counters(p, k_a, &sec_a, k_b, &sec_b);
        },
    );
}

#[test]
fn per_node_pack_counts_match_load_stats_randomized() {
    let gen = prop::from_fn(|rng| {
        let p = rng.random_range(1..=6);
        let k = rng.random_range(1..=12);
        let c = rng.random_range(1..=40);
        let l = rng.random_range(0..=30);
        let s = rng.random_range(1..=20);
        (p, k, c, l, s)
    });
    let cfg = prop::Config {
        cases: 40,
        ..Default::default()
    };
    prop::check_with(
        &cfg,
        "LoadStats.per_proc == traced per-node pack counts",
        &gen,
        |&(p, k, c, l, s)| {
            let sec = RegularSection::new(l, l + s * (c - 1), s).unwrap();
            let n = sec.normalized().hi + 1;
            let data: Vec<i64> = (0..n).collect();
            let arr = DistArray::from_global(p, k, &data).unwrap();
            let machine = Machine::new(p);
            // Each node packs its share on its own thread, so the counts
            // land on per-node lanes.
            let (bufs, trace) = bcag_trace::capture(|| {
                machine.run_collect(|m| pack(&arr, &sec, m as i64, Method::Lattice).unwrap())
            });
            let expect = load_stats(p, k, &sec).unwrap();
            let got = per_node_packed_from_trace(&trace, p);
            assert_eq!(got, expect.per_proc, "p={p} k={k} sec={l}:{}:{s}", sec.u);
            // The buffers themselves agree with the counters.
            let lens: Vec<i64> = bufs.iter().map(|b| b.len() as i64).collect();
            assert_eq!(lens, expect.per_proc);
        },
    );
}
