//! Traffic bench: many driver threads pushing randomized interpreter
//! scripts through the shared schedule cache and resident worker pools.
//!
//! Unlike the other benches (median/MAD of one hot loop), this one
//! measures the *distribution* of whole-script latencies under
//! concurrency — the regime where a shared cache either amortizes table
//! construction across drivers or serializes them on its lock. Script
//! parameters are drawn from small pools so distinct drivers collide on
//! the same `(p, k, section)` shapes and the cache hit rate is a
//! meaningful output rather than noise.
//!
//! The report (`BENCH_traffic.json`, schema `bcag-traffic/v2`) carries
//! p50/p95/p99/max script latency, the schedule-cache hit rate over the
//! run, the cache shard count, and an `slo` block: the committed p99
//! ceiling and hit-rate floor for the full profile, plus pass/fail bools
//! that `ci.sh` gates merges on. Flags: `--quick` (smoke profile),
//! `--json <path>`, `--seed <n>`; unknown flags are ignored like the
//! engine's.

use std::sync::Mutex;
use std::time::Instant;

use bcag_harness::bench::default_report_dir;
use bcag_harness::json::Json;
use bcag_harness::rng::{mix_seed, Rng};
use bcag_trace::Histogram;

/// One randomized script. Every parameter is drawn from a small pool on
/// purpose: the traffic must *repeat* shapes across threads for the
/// shared schedule cache to show a hit rate. The full profile includes
/// the paper's machine scale (p=32); `--quick` keeps node counts small
/// so the CI smoke stays cheap.
fn random_script(rng: &mut Rng, quick: bool) -> String {
    const N: i64 = 384;
    let p = if quick {
        *rng.choice(&[2i64, 4])
    } else {
        *rng.choice(&[4i64, 32])
    };
    let k = *rng.choice(&[3i64, 5, 8]);
    let k2 = *rng.choice(&[2i64, 4, 7]);
    let s = *rng.choice(&[1i64, 3, 4, 9]);
    let l = *rng.choice(&[0i64, 1, 2, 5]);
    let u = N - 1 - *rng.choice(&[0i64, 1, 3]);
    let mut script = format!(
        "PROCESSORS P({p})\n\
         TEMPLATE T({N})\n\
         REAL A({N})\n\
         REAL B({N})\n\
         ALIGN A(i) WITH T(i)\n\
         ALIGN B(i) WITH T(i)\n\
         DISTRIBUTE T(CYCLIC({k})) ONTO P\n\
         INIT A LINEAR 1 0\n\
         INIT B LINEAR 2 1\n"
    );
    for _ in 0..rng.random_range(1..=3) {
        if rng.random_bool(0.5) {
            script.push_str(&format!("ASSIGN A({l}:{u}:{s}) = B({l}:{u}:{s}) * 2\n"));
        } else {
            script.push_str(&format!(
                "ASSIGN A({l}:{u}:{s}) = A({l}:{u}:{s}) + B({l}:{u}:{s})\n"
            ));
        }
    }
    if rng.random_bool(0.5) {
        script.push_str(&format!("REDISTRIBUTE A CYCLIC({k2})\n"));
    }
    script
}

/// Serving SLOs for the full profile, asserted by `ci.sh` against the
/// committed `BENCH_traffic.json`: whole-script p99 must stay under the
/// ceiling and the schedule-cache hit rate above the floor. The quick
/// profile reports the same keys (the gates only bind on full runs —
/// quick's tiny script count makes its p99 a coin flip).
const SLO_P99_CEILING_NS: u64 = 6_200_000;
const SLO_HIT_RATE_FLOOR: f64 = 0.65;

fn hist_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::Int(h.count() as i64)),
        ("mean_ns", Json::Num(h.mean() as f64)),
        ("p50_ns", Json::Int(h.percentile(50.0) as i64)),
        ("p95_ns", Json::Int(h.percentile(95.0) as i64)),
        ("p99_ns", Json::Int(h.percentile(99.0) as i64)),
        ("max_ns", Json::Int(h.max() as i64)),
    ])
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut seed = 0xbca6_7aff_1c00_0001u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next().map(Into::into),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a u64")
            }
            "--bench" => {}
            other => eprintln!("traffic: ignoring unknown argument {other:?}"),
        }
    }
    let (threads, scripts_per_thread) = if quick { (2, 6) } else { (4, 32) };

    let cache_before = bcag_spmd::cache::stats();
    let merged = Mutex::new(Histogram::new());
    let statements = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let merged = &merged;
            let statements = &statements;
            let mut rng = Rng::seed_from_u64(mix_seed(seed.wrapping_add(t as u64)));
            scope.spawn(move || {
                let mut local = Histogram::new();
                for _ in 0..scripts_per_thread {
                    let src = random_script(&mut rng, quick);
                    let start = Instant::now();
                    let out = bcag_rt::Interp::run(&src).expect("generated script must run");
                    local.record(start.elapsed().as_nanos() as u64);
                    statements.fetch_add(
                        src.lines().count() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    std::hint::black_box(out);
                }
                merged.lock().unwrap().merge(&local);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as i64;
    let cache_after = bcag_spmd::cache::stats();
    let script_latency = merged.into_inner().unwrap();

    // Hit rate over this run only: the cache is process-global, so delta
    // the counters instead of reading the lifetime totals.
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };

    println!(
        "traffic: {} threads x {} scripts ({} statements) in {:.1} ms",
        threads,
        scripts_per_thread,
        statements.load(std::sync::atomic::Ordering::Relaxed),
        wall_ns as f64 / 1e6
    );
    println!(
        "script latency ns: p50={} p95={} p99={} max={}",
        script_latency.percentile(50.0),
        script_latency.percentile(95.0),
        script_latency.percentile(99.0),
        script_latency.max()
    );
    println!(
        "schedule cache: hits={hits} misses={misses} hit_rate={:.1}% evictions={}",
        hit_rate * 100.0,
        cache_after.evictions - cache_before.evictions
    );

    let p99_ns = script_latency.percentile(99.0);
    let report = Json::obj(vec![
        ("schema", Json::Str("bcag-traffic/v2".into())),
        ("bench", Json::Str("traffic".into())),
        ("quick", Json::Bool(quick)),
        ("threads", Json::Int(threads)),
        ("scripts_per_thread", Json::Int(scripts_per_thread)),
        (
            "statements",
            Json::Int(statements.load(std::sync::atomic::Ordering::Relaxed) as i64),
        ),
        ("wall_ns", Json::Int(wall_ns)),
        ("script_latency", hist_json(&script_latency)),
        (
            "schedule_cache",
            Json::obj(vec![
                ("hits", Json::Int(hits as i64)),
                ("misses", Json::Int(misses as i64)),
                ("hit_rate", Json::Num(hit_rate)),
                ("entries", Json::Int(cache_after.entries as i64)),
                ("capacity", Json::Int(cache_after.capacity as i64)),
                (
                    "evictions",
                    Json::Int((cache_after.evictions - cache_before.evictions) as i64),
                ),
                ("shards", Json::Int(cache_after.shards as i64)),
            ]),
        ),
        (
            "slo",
            Json::obj(vec![
                ("p99_ceiling_ns", Json::Int(SLO_P99_CEILING_NS as i64)),
                ("hit_rate_floor", Json::Num(SLO_HIT_RATE_FLOOR)),
                ("p99_within_slo", Json::Bool(p99_ns <= SLO_P99_CEILING_NS)),
                (
                    "hit_rate_within_slo",
                    Json::Bool(hit_rate >= SLO_HIT_RATE_FLOOR),
                ),
            ]),
        ),
    ]);
    let path = json_path.unwrap_or_else(|| default_report_dir().join("traffic.json"));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&path, report.to_pretty_string()).expect("write report");
    println!("traffic: report -> {}", path.display());
}
