//! Self-tuning dispatch A/B bench: tuned vs forced pack modes, and
//! L2-blocked vs unblocked fused epochs.
//!
//! Four pack shapes, chosen for where the tuner's decisions differ
//! (p = 4, k = 8):
//!
//! * **sparse u8 (s = k + 1 = 9)** — the figure-6-like worst case at
//!   one byte per element: gaps alternate within the period, runs
//!   degenerate to length-2 pairs, ~7 of every 64 fetched bytes used,
//!   and each segment dispatch moves two bytes. The tuner flips to the
//!   scalar gap-table walk; forced `Runs` pays per-segment dispatch for
//!   nothing. This is the headline cell: tuned must beat forced-`Runs`
//!   by `MIN_TUNED_OVER_RUNS`×.
//! * **sparse f64 (s = 9)** — the same structure at 8 bytes per
//!   element: the walk still wins, by a thinner margin (dispatch per 16
//!   moved bytes instead of per 2).
//! * **gap-64B f64 (s = 8)** — one uniform 64-byte stride: a single
//!   strided segment that touches a fresh cache line per element. Low
//!   utilization, but nothing to dispatch — the segment loop wins, and
//!   the tuner must keep it (the shape that separates the
//!   short-segment criterion from a naive utilization-only rule).
//! * **dense f64 (s = 1)** — contiguous: the tuner keeps run-coalesced
//!   slice copies, and must not regress against forced `Runs`.
//!
//! Every cell measures packed elements/sec under tuned, forced-`Runs`
//! and forced-per-element; tuned must stay ≥ `MIN_PARITY`× of the best
//! forced mode on every cell (it picks one of them, so the cost of the
//! cached decision lookup is the only possible gap).
//!
//! The fourth measurement is the blocking A/B: a communication-free
//! fused statement over an 8 MiB-per-node f64 section (≫ L2), run under
//! `TuneMode::Auto` (stage→apply pipelined through L2-sized blocks) and
//! `TuneMode::Fixed` (one full-section staging buffer). Blocked must
//! win (`MIN_BLOCKED_OVER_UNBLOCKED`).
//!
//! The report (`BENCH_tune.json`, schema `bcag-tune/v1`) carries median
//! latencies, the derived ratios and an `slo` block `ci.sh` gates
//! merges on. Flags: `--quick`, `--json <path>`; unknown flags ignored.

use std::hint::black_box;
use std::time::Instant;

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_core::tune::{self, TuneMode};
use bcag_harness::bench::default_report_dir;
use bcag_harness::json::Json;
use bcag_spmd::pack::pack_with_buf_mode;
use bcag_spmd::{assign_expr, pool, DistArray, PackMode};

/// Committed SLOs for the full profile (see module docs).
const MIN_TUNED_OVER_RUNS: f64 = 1.5;
const MIN_PARITY: f64 = 0.95;
const MIN_BLOCKED_OVER_UNBLOCKED: f64 = 1.0;

const P: i64 = 4;
const K: i64 = 8;

/// Round-robin A/B sampler: one timed sample per variant per round, so
/// slow drift on a shared host (frequency scaling, neighbors) lands on
/// every variant alike instead of biasing whichever measured last.
/// Returns per-variant median ns.
fn interleaved_median_ns<const V: usize>(
    warmup: usize,
    iters: usize,
    mut f: impl FnMut(usize),
) -> [u64; V] {
    for _ in 0..warmup {
        for v in 0..V {
            f(v);
        }
    }
    let mut samples: Vec<Vec<u64>> = vec![Vec::with_capacity(iters); V];
    for _ in 0..iters {
        for (v, lane) in samples.iter_mut().enumerate() {
            let t = Instant::now();
            f(v);
            lane.push(t.elapsed().as_nanos() as u64);
        }
    }
    std::array::from_fn(|v| {
        samples[v].sort_unstable();
        samples[v][iters / 2]
    })
}

/// Median ns per mode for one shape, in [tuned, runs, per-element]
/// order, plus the section count for elements/sec derivation.
fn pack_shape<T: bcag_spmd::PackValue>(
    s: i64,
    count: i64,
    make: impl Fn(i64) -> T,
    warmup: usize,
    iters: usize,
) -> ([u64; 3], i64) {
    let sec = RegularSection::new(0, s * (count - 1), s).unwrap();
    let n = sec.u + 1;
    let data: Vec<T> = (0..n).map(make).collect();
    let arr = DistArray::from_global(P, K, &data).unwrap();
    let modes = [PackMode::Tuned, PackMode::Runs, PackMode::PerElement];
    let mut buf: Vec<T> = Vec::new();
    let ns = interleaved_median_ns::<3>(warmup, iters, |v| {
        let mut total = 0usize;
        for m in 0..P {
            total +=
                pack_with_buf_mode(&arr, &sec, m, Method::Lattice, modes[v], &mut buf).unwrap();
        }
        black_box(total);
    });
    (ns, count)
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next().map(Into::into),
            "--bench" => {}
            other => eprintln!("locality_tuning: ignoring unknown argument {other:?}"),
        }
    }
    let (warmup, iters) = if quick { (3, 30) } else { (30, 300) };
    tune::set_default_tune(TuneMode::Auto);

    // Pack cells. Counts keep each source array a few MiB — spilled
    // past L2 on any host (the tuner's win is dispatch, not residency,
    // but the spilled regime is the honest production case).
    let mut cells: Vec<(&str, [u64; 3], i64)> = Vec::new();
    let (ns, count) = pack_shape::<u8>(K + 1, 100_000, |i| (i * 13 % 251) as u8, warmup, iters);
    cells.push(("sparse_u8_s9", ns, count));
    let (ns, count) = pack_shape::<f64>(K + 1, 100_000, |i| i as f64 * 0.5, warmup, iters);
    cells.push(("sparse_f64_s9", ns, count));
    let (ns, count) = pack_shape::<f64>(8, 65_536, |i| i as f64 * 0.5, warmup, iters);
    cells.push(("gap64_f64_s8", ns, count));
    let (ns, count) = pack_shape::<f64>(1, 1 << 20, |i| i as f64 * 0.5, warmup, iters);
    cells.push(("dense_f64_s1", ns, count));

    // Blocking A/B: one communication-free fused f64 statement, 4M
    // elements over p=2 (16 MiB per node ≫ any L2). Auto blocks the
    // stage→apply pipeline into L2-sized chunks; Fixed stages the whole
    // section per epoch.
    let (bw, bi) = if quick { (1, 5) } else { (3, 30) };
    let p2 = 2i64;
    let nn = 4i64 << 20;
    pool::warm(p2);
    let sec = RegularSection::new(0, nn - 1, 1).unwrap();
    let data: Vec<f64> = (0..nn).map(|i| (i % 8191) as f64).collect();
    let src = DistArray::from_global(p2, 64, &data).unwrap();
    let mut dst = DistArray::from_global(p2, 64, &data).unwrap();
    let tune_modes = [TuneMode::Auto, TuneMode::Fixed];
    let [blocked_ns, unblocked_ns] = interleaved_median_ns::<2>(bw, bi, |v| {
        tune::set_default_tune(tune_modes[v]);
        assign_expr(&mut dst, &sec, &[(&src, sec)], |v| v[0] * 1.0001 + 0.5).unwrap();
        black_box(dst.local(0).len());
    });
    tune::set_default_tune(TuneMode::Auto);

    // Derived ratios (per-cell elements/sec share a count, so latency
    // ratios are throughput ratios).
    let tuned_over_runs_sparse = cells[0].1[1] as f64 / cells[0].1[0].max(1) as f64;
    let parity_worst = cells
        .iter()
        .map(|(_, ns, _)| ns[1].min(ns[2]) as f64 / ns[0].max(1) as f64)
        .chain(std::iter::once(
            unblocked_ns as f64 / blocked_ns.max(1) as f64,
        ))
        .fold(f64::INFINITY, f64::min);
    let blocked_over_unblocked = unblocked_ns as f64 / blocked_ns.max(1) as f64;

    println!(
        "locality_tuning: p={P} k={K} iters={iters} l2={}KiB (median ns; elements/sec in parens)",
        tune::l2_bytes() / 1024
    );
    for (label, ns, count) in &cells {
        let eps = |ns: u64| *count as f64 / ns.max(1) as f64 * 1e9;
        println!(
            "  {label:<10} tuned {:>10} ({:.2e}/s)  runs {:>10} ({:.2e}/s)  per-element {:>10} ({:.2e}/s)",
            ns[0],
            eps(ns[0]),
            ns[1],
            eps(ns[1]),
            ns[2],
            eps(ns[2]),
        );
    }
    println!("  xfer_gt_l2 blocked {blocked_ns:>10}  unblocked {unblocked_ns:>10}");
    println!(
        "  tuned_over_runs_sparse = {tuned_over_runs_sparse:.2}x (floor {MIN_TUNED_OVER_RUNS:.1}x)"
    );
    println!("  parity_worst           = {parity_worst:.3}x (floor {MIN_PARITY:.2}x)");
    println!(
        "  blocked_over_unblocked = {blocked_over_unblocked:.2}x (floor {MIN_BLOCKED_OVER_UNBLOCKED:.1}x)"
    );

    let mut fields = vec![
        ("schema", Json::Str("bcag-tune/v1".into())),
        ("bench", Json::Str("locality_tuning".into())),
        ("quick", Json::Bool(quick)),
        ("p", Json::Int(P)),
        ("k", Json::Int(K)),
        ("iters", Json::Int(iters as i64)),
        ("l2_kb", Json::Int((tune::l2_bytes() / 1024) as i64)),
    ];
    for (label, ns, count) in &cells {
        fields.push((
            label,
            Json::obj(vec![
                ("count", Json::Int(*count)),
                ("tuned_ns", Json::Int(ns[0] as i64)),
                ("runs_ns", Json::Int(ns[1] as i64)),
                ("per_element_ns", Json::Int(ns[2] as i64)),
            ]),
        ));
    }
    fields.push((
        "xfer_gt_l2",
        Json::obj(vec![
            ("elements", Json::Int(nn)),
            ("blocked_ns", Json::Int(blocked_ns as i64)),
            ("unblocked_ns", Json::Int(unblocked_ns as i64)),
        ]),
    ));
    fields.push(("tuned_over_runs_sparse", Json::Num(tuned_over_runs_sparse)));
    fields.push(("parity_worst", Json::Num(parity_worst)));
    fields.push(("blocked_over_unblocked", Json::Num(blocked_over_unblocked)));
    fields.push((
        "slo",
        Json::obj(vec![
            ("min_tuned_over_runs_sparse", Json::Num(MIN_TUNED_OVER_RUNS)),
            ("min_parity", Json::Num(MIN_PARITY)),
            (
                "min_blocked_over_unblocked",
                Json::Num(MIN_BLOCKED_OVER_UNBLOCKED),
            ),
            (
                "sparse_within_slo",
                Json::Bool(tuned_over_runs_sparse >= MIN_TUNED_OVER_RUNS),
            ),
            ("parity_within_slo", Json::Bool(parity_worst >= MIN_PARITY)),
            (
                "blocked_within_slo",
                Json::Bool(blocked_over_unblocked >= MIN_BLOCKED_OVER_UNBLOCKED),
            ),
        ]),
    ));
    let report = Json::obj(fields);
    let path = json_path.unwrap_or_else(|| default_report_dir().join("locality_tuning.json"));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&path, report.to_pretty_string()).expect("write report");
    println!("locality_tuning: report -> {}", path.display());
}
