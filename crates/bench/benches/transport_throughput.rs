//! Transport fabric throughput: mpsc vs shm vs proc backends.
//!
//! The schedule is built once outside the timed region; each measurement
//! times `CommSchedule::execute_transport` alone with the batched
//! strategy on the resident pool, so the numbers isolate the *fabric*:
//! the unbounded `std::sync::mpsc` reference, the lock-free SPSC
//! ring-buffer shared-memory fabric, and the ring fabric carrying the
//! serialized wire format (the in-process twin of what `bcag spmd`
//! ships between OS processes — the serialization cost without the
//! pipe cost). Sweeps machine size, stride and element size;
//! elements/sec is `count / median_ns * 1e9` from the report.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::section::RegularSection;
use bcag_spmd::{CommSchedule, DistArray, ExecMode, LaunchMode, PackValue, TransportKind};

/// One measurement triple (all fabrics) for a `cyclic(8) = cyclic(3)`
/// redistribution of `count` elements with the given strides.
fn bench_triple<T: PackValue + Default>(
    bench: &mut Bench,
    group: &str,
    label: &str,
    p: i64,
    count: i64,
    s_a: i64,
    s_b: i64,
    make: impl Fn(i64) -> T,
) {
    let (k_a, k_b) = (8i64, 3i64);
    let sec_a = RegularSection::new(2, 2 + (count - 1) * s_a, s_a).unwrap();
    let sec_b = RegularSection::new(1, 1 + (count - 1) * s_b, s_b).unwrap();
    let n_a = sec_a.normalized().hi + 1;
    let n_b = sec_b.normalized().hi + 1;
    let bg: Vec<T> = (0..n_b).map(make).collect();
    let b = DistArray::from_global(p, k_b, &bg).unwrap();
    let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
    let mut group = bench.group(group);
    for kind in TransportKind::ALL {
        let mut a = DistArray::new(p, k_a, n_a, T::default()).unwrap();
        group.bench(&format!("{}/{label}", kind.name()), || {
            sched
                .execute_transport(&mut a, &b, ExecMode::Batched, LaunchMode::Pooled, kind)
                .unwrap();
            black_box(a.local(0).len())
        });
    }
}

fn main() {
    let mut bench = Bench::from_env("transport_throughput");
    for p in [4i64, 32] {
        let group = format!("p{p}");
        bench_triple::<i64>(
            &mut bench,
            &group,
            "i64/dense/n100000",
            p,
            100_000,
            1,
            1,
            |i| i,
        );
        bench_triple::<i64>(
            &mut bench,
            &group,
            "i64/strided/n50000",
            p,
            50_000,
            3,
            2,
            |i| i,
        );
        bench_triple::<u8>(
            &mut bench,
            &group,
            "u8/dense/n100000",
            p,
            100_000,
            1,
            1,
            |i| i as u8,
        );
        bench_triple::<[f64; 4]>(
            &mut bench,
            &group,
            "f64x4/dense/n25000",
            p,
            25_000,
            1,
            1,
            |i| [i as f64; 4],
        );
    }
    bench.finish();
}
