//! Ablation A3: effect of `d = gcd(s, pk) > 1`.
//!
//! When the stride shares factors with `pk`, the section hits only `k/d`
//! offset classes per processor, so tables shrink and both methods speed up
//! — but the lattice method's d-stepped loops benefit more than the
//! baseline's sort. Sweep `d` at fixed `k = 256`, `p = 32`.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

fn main() {
    let mut bench = Bench::from_env("gcd_effect");
    let (p, k) = (32i64, 256i64);
    let mut group = bench.group("gcd_effect_k256");
    // Strides engineered for specific gcds with pk = 8192: gcd(3,8192)=1,
    // gcd(4,8192)=4, gcd(32,8192)=32, gcd(96,8192)=32, gcd(128,8192)=128.
    for s in [3i64, 4, 32, 96, 128] {
        let problem = Problem::new(p, k, 0, s).unwrap();
        let d = problem.d();
        group.bench(&format!("lattice/s{s}_d{d}"), || {
            black_box(build(&problem, 31, Method::Lattice).unwrap())
        });
        group.bench(&format!("sorting/s{s}_d{d}"), || {
            black_box(build(&problem, 31, Method::SortingAuto).unwrap())
        });
    }
    bench.finish();
}
