//! Tracing overhead: `build_all` with the session off, on, and uninstrumented
//! per-primitive costs.
//!
//! The acceptance bar for the tracing layer is that instrumented code with
//! tracing *disabled* is indistinguishable from uninstrumented code: the
//! fast path is one relaxed atomic load per site. This bench quantifies all
//! three regimes so a regression shows up as a ratio change in the report:
//!
//! * `build_all/off` — instrumented workload, tracing disabled (the shipping
//!   configuration);
//! * `build_all/on` — same workload inside an active session, paying span
//!   recording and counter aggregation;
//! * `primitive/*` — the raw disabled span/count fast paths.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::lattice_alg::build_all;
use bcag_core::params::Problem;

fn main() {
    let mut bench = Bench::from_env("trace_overhead");

    // The paper's machine scale (32 nodes) with a big block so the workload
    // dwarfs timing noise.
    let problem = Problem::new(32, 512, 4, 9).unwrap();

    let mut group = bench.group("build_all_p32_k512");
    group.bench("off", || black_box(build_all(&problem).unwrap()));
    group.bench("on", || {
        let (pats, _trace) = bcag_trace::capture(|| build_all(&problem).unwrap());
        black_box(pats)
    });

    let mut group = bench.group("primitive_disabled");
    group.bench("span", || black_box(bcag_trace::span("bench.probe")));
    group.bench("count", || bcag_trace::count("bench_probe", 1));
    // The histogram sites must share the same disabled fast path: one
    // relaxed atomic load, no clock read, no lane lookup.
    group.bench("record", || bcag_trace::record("bench_probe_ns", 42));
    group.bench("timed_span", || {
        black_box(bcag_trace::timed_span("bench_probe_ns"))
    });
    group.bench("gauge", || bcag_trace::gauge("bench_probe_depth", 3));

    bench.finish();
}
