//! Ablation A2: table-free generation (basis vectors only) vs table-based
//! traversal.
//!
//! The paper's closing remark in Section 6.2: returning only `R` and `L`
//! "eliminates memory overhead with only a small penalty in the execution
//! time". Compare the [`bcag_core::walker::Walker`] against the
//! access-ordered table loop (shape 8(b)) and the two-table loop (8(d)) on
//! the same workload.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::Method;
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::walker::Walker;
use bcag_spmd::assign::plan_section;
use bcag_spmd::codeshapes::{traverse_branch, traverse_two_table};
use bcag_spmd::darray::DistArray;

fn main() {
    let mut bench = Bench::from_env("tableless");
    let p = 32i64;
    let elems_per_proc = 2_000i64;
    for (k, s) in [(32i64, 15i64), (256, 99)] {
        let total = elems_per_proc * p;
        let u = s * (total - 1);
        let section = RegularSection::new(0, u, s).unwrap();
        let problem = Problem::new(p, k, 0, s).unwrap();
        let mut arr = DistArray::new(p, k, u + 1, 0.0f32).unwrap();
        let plans = plan_section(p, k, &section, Method::Lattice).unwrap();
        let m = p - 1;
        let plan = plans[m as usize].clone();
        let Some(start) = plan.start else { continue };
        let tables = plan.tables.clone().expect("tables");
        let local = arr.local_mut(m);

        let mut group = bench.group(&format!("tableless_k{k}_s{s}"));
        group.bench("walker/RL-only", || {
            // Generate and consume the local address stream with no
            // stored tables (setup cost included, as a compiler would
            // pay it once per loop nest).
            let w = Walker::new(&problem, m).unwrap();
            let mut acc = 0i64;
            for a in w.up_to(u) {
                acc = acc.wrapping_add(black_box(a.local));
            }
            acc
        });
        group.bench("table/8(b)", || {
            traverse_branch(local, start, plan.last, &plan.delta_m, |x| *x = 100.0)
        });
        group.bench("two-table/8(d)", || {
            traverse_two_table(local, start, plan.last, &tables, |x| *x = 100.0)
        });
    }
    bench.finish();
}
