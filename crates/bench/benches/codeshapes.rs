//! Confirmation of Table 2: per-processor traversal time for the four
//! node-code shapes of Figure 8 — plus the run-coalesced fifth shape this
//! codebase adds — on one processor's local memory (2,000 assigned
//! elements per iteration so the engine can sample densely).

use bcag_harness::bench::Bench;

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_spmd::assign::plan_section;
use bcag_spmd::codeshapes::{traverse, CodeShape};
use bcag_spmd::darray::DistArray;

fn main() {
    let mut bench = Bench::from_env("codeshapes");
    let p = 32i64;
    let elems_per_proc = 2_000i64;
    for k in [4i64, 32, 256] {
        for s in [3i64, 15, 99] {
            let total = elems_per_proc * p;
            let u = s * (total - 1);
            let section = RegularSection::new(0, u, s).unwrap();
            let mut arr = DistArray::new(p, k, u + 1, 0.0f32).unwrap();
            let plans = plan_section(p, k, &section, Method::Lattice).unwrap();
            let m = (p - 1) as usize;
            let plan = plans[m].clone();
            let Some(start) = plan.start else { continue };
            let tables = plan.tables.clone().expect("tables");
            let local = arr.local_mut(m as i64);

            let mut group = bench.group(&format!("codeshapes_k{k}_s{s}"));
            for shape in CodeShape::WITH_RUNS {
                group.bench(&format!("{}/{elems_per_proc}", shape.label()), || {
                    traverse(
                        shape,
                        local,
                        start,
                        plan.last,
                        &plan.delta_m,
                        &tables,
                        &plan.runs,
                        |x| *x = 100.0,
                    )
                });
            }
        }
    }
    bench.finish();
}
