//! Ablation: special-case constructors vs the general lattice algorithm
//! (paper §6.1: "several special cases ... can be handled more
//! efficiently").

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::special::{build_fast, classify};

fn main() {
    let mut bench = Bench::from_env("special_cases");
    let p = 32i64;
    let mut group = bench.group("special_cases");
    // (k, s) pairs hitting each class.
    for (k, s) in [
        (256i64, 1i64), // Dense
        (256, 4),       // IntraBlock (4 | 256)
        (256, 8192),    // PeriodOnly (s = pk)
        (256, 99),      // General (control)
    ] {
        let problem = Problem::new(p, k, 0, s).unwrap();
        let label = format!("k{k}_s{s}_{:?}", classify(&problem));
        group.bench(&format!("fast/{label}"), || {
            black_box(build_fast(&problem, 31).unwrap())
        });
        group.bench(&format!("general/{label}"), || {
            black_box(build(&problem, 31, Method::Lattice).unwrap())
        });
    }
    bench.finish();
}
