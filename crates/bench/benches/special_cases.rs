//! Ablation: special-case constructors vs the general lattice algorithm
//! (paper §6.1: "several special cases ... can be handled more
//! efficiently").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::special::{build_fast, classify};

fn bench_special(c: &mut Criterion) {
    let p = 32i64;
    let mut group = c.benchmark_group("special_cases");
    // (k, s) pairs hitting each class.
    for (k, s) in [
        (256i64, 1i64),  // Dense
        (256, 4),        // IntraBlock (4 | 256)
        (256, 8192),     // PeriodOnly (s = pk)
        (256, 99),       // General (control)
    ] {
        let problem = Problem::new(p, k, 0, s).unwrap();
        let label = format!("k{k}_s{s}_{:?}", classify(&problem));
        group.bench_with_input(BenchmarkId::new("fast", &label), &(), |b, _| {
            b.iter(|| black_box(build_fast(&problem, 31).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("general", &label), &(), |b, _| {
            b.iter(|| black_box(build(&problem, 31, Method::Lattice).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_special);
criterion_main!(benches);
