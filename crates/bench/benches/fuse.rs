//! Fused-epoch A/B bench: the statement path with the fused compiler on
//! vs off, and against hand-coded BLAS-1.
//!
//! Two shapes, both on the interpreter-facing [`assign_expr`] surface:
//!
//! * **triad** — `A(0:357:3) = B(2:240:2)·α + C(10:129:1)` with three
//!   distinct blockings, the general mixed-layout statement. Measured
//!   fused (`BCAG_FUSE=on` equivalent) and interpreted; their ratio is
//!   the payoff of compiling gather + exchange + apply into one epoch
//!   (one pool dispatch instead of one per operand plus one for
//!   compute, and no staging-array clones).
//! * **axpy** — `Y(sec) = α·X(sec) + Y(sec)` on identical layouts, the
//!   shape [`bcag_spmd::blas1::axpy`] hand-codes as a pure local loop.
//!   The fused statement must stay within a small factor of it: that
//!   gap is the whole price of interpreting a script instead of calling
//!   the library.
//!
//! The report (`BENCH_fuse.json`, schema `bcag-fuse/v1`) carries median
//! latencies for all four measurements and an `slo` block `ci.sh` gates
//! merges on: fused must beat interpreted by `MIN_FUSED_OVER_INTERP`×
//! on the triad, and stay within `MAX_FUSED_VS_BLAS1`× of hand-coded
//! axpy. Flags: `--quick`, `--json <path>`; unknown flags are ignored.

use std::hint::black_box;
use std::time::Instant;

use bcag_core::section::RegularSection;
use bcag_harness::bench::default_report_dir;
use bcag_harness::json::Json;
use bcag_spmd::{assign_expr, blas1, pool, set_default_fused, DistArray, FusedMode};

/// Committed SLOs for the full profile (see module docs).
const MIN_FUSED_OVER_INTERP: f64 = 2.0;
const MAX_FUSED_VS_BLAS1: f64 = 2.0;

fn median_ns(warmup: usize, iters: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let mut quick = false;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next().map(Into::into),
            "--bench" => {}
            other => eprintln!("fuse: ignoring unknown argument {other:?}"),
        }
    }
    let (warmup, iters) = if quick { (5, 40) } else { (60, 600) };
    let p = 4i64;
    let n = 400i64;
    let alpha = 3.0f64;
    pool::warm(p);

    // Triad: the mixed-layout statement of the statement tests, fused
    // vs interpreted on identical inputs.
    let sec_a = RegularSection::new(0, 357, 3).unwrap();
    let sec_b = RegularSection::new(2, 240, 2).unwrap();
    let sec_c = RegularSection::new(10, 129, 1).unwrap();
    let sec_d = RegularSection::new(1, 239, 2).unwrap();
    let bg: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cg: Vec<f64> = (0..n).map(|i| (i * i % 97) as f64).collect();
    let b = DistArray::from_global(p, 5, &bg).unwrap();
    let c = DistArray::from_global(p, 16, &cg).unwrap();
    let d = DistArray::from_global(p, 7, &cg).unwrap();
    let mut a = DistArray::new(p, 8, n, 0.0f64).unwrap();
    let mut triad = |mode: FusedMode| {
        set_default_fused(mode);
        let ns = median_ns(warmup, iters, || {
            assign_expr(
                &mut a,
                &sec_a,
                &[(&b, sec_b), (&c, sec_c), (&d, sec_d)],
                |v| v[0] * alpha + v[1] - v[2],
            )
            .unwrap();
            black_box(a.local(0).len());
        });
        set_default_fused(FusedMode::On);
        ns
    };
    let triad_fused_ns = triad(FusedMode::On);
    let triad_interp_ns = triad(FusedMode::Off);

    // Axpy shape: identical layouts and sections, so hand-coded blas1
    // takes its pure-local fast path — the floor the fused statement is
    // measured against.
    let sec = RegularSection::new(0, n - 1, 1).unwrap();
    let x = DistArray::from_global(p, 8, &bg).unwrap();
    let mut y = DistArray::from_global(p, 8, &cg).unwrap();
    let y0 = y.clone();
    let axpy_fused_ns = median_ns(warmup, iters, || {
        assign_expr(&mut y, &sec, &[(&x, sec), (&y0, sec)], |v| {
            alpha * v[0] + v[1]
        })
        .unwrap();
        black_box(y.local(0).len());
    });
    let blas1_ns = median_ns(warmup, iters, || {
        blas1::axpy(alpha, &x, &sec, &mut y, &sec).unwrap();
        black_box(y.local(0).len());
    });

    let fused_over_interp = triad_interp_ns as f64 / triad_fused_ns.max(1) as f64;
    let fused_vs_blas1 = axpy_fused_ns as f64 / blas1_ns.max(1) as f64;

    println!("fuse: p={p} n={n} iters={iters} (median ns)");
    println!("  triad fused      {triad_fused_ns:>10}");
    println!("  triad interpreted{triad_interp_ns:>10}");
    println!("  axpy  fused      {axpy_fused_ns:>10}");
    println!("  axpy  blas1      {blas1_ns:>10}");
    println!(
        "  fused_over_interpreted = {fused_over_interp:.2}x (floor {MIN_FUSED_OVER_INTERP:.1}x)"
    );
    println!("  fused_vs_blas1         = {fused_vs_blas1:.2}x (ceiling {MAX_FUSED_VS_BLAS1:.1}x)");

    let report = Json::obj(vec![
        ("schema", Json::Str("bcag-fuse/v1".into())),
        ("bench", Json::Str("fuse".into())),
        ("quick", Json::Bool(quick)),
        ("p", Json::Int(p)),
        ("n", Json::Int(n)),
        ("iters", Json::Int(iters as i64)),
        ("triad_fused_ns", Json::Int(triad_fused_ns as i64)),
        ("triad_interp_ns", Json::Int(triad_interp_ns as i64)),
        ("axpy_fused_ns", Json::Int(axpy_fused_ns as i64)),
        ("blas1_ns", Json::Int(blas1_ns as i64)),
        ("fused_over_interpreted", Json::Num(fused_over_interp)),
        ("fused_vs_blas1", Json::Num(fused_vs_blas1)),
        (
            "slo",
            Json::obj(vec![
                (
                    "min_fused_over_interpreted",
                    Json::Num(MIN_FUSED_OVER_INTERP),
                ),
                ("max_fused_vs_blas1", Json::Num(MAX_FUSED_VS_BLAS1)),
                (
                    "speedup_within_slo",
                    Json::Bool(fused_over_interp >= MIN_FUSED_OVER_INTERP),
                ),
                (
                    "blas1_within_slo",
                    Json::Bool(fused_vs_blas1 <= MAX_FUSED_VS_BLAS1),
                ),
            ]),
        ),
    ]);
    let path = json_path.unwrap_or_else(|| default_report_dir().join("fuse.json"));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&path, report.to_pretty_string()).expect("write report");
    println!("fuse: report -> {}", path.display());
}
