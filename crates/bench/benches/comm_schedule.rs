//! Ablation A4: communication-schedule construction — rank-by-rank
//! enumeration vs the closed-form lattice/CRT construction.
//!
//! Enumeration costs O(section elements); the lattice construction costs
//! O(p²·k_a·k_b) setup plus output, so it wins when sections span many
//! cycles. Sweep the section length at fixed layouts to expose the
//! crossover.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_spmd::comm::CommSchedule;

fn main() {
    let mut bench = Bench::from_env("comm_schedule");
    let p = 8i64;
    let (k_a, k_b) = (8i64, 3i64);
    let mut group = bench.group("comm_schedule");
    for count in [100i64, 1_000, 10_000] {
        let sec_a = RegularSection::new(2, 2 + (count - 1) * 4, 4).unwrap();
        let sec_b = RegularSection::new(1, 1 + (count - 1) * 4, 4).unwrap();
        group.bench(&format!("enumerated/{count}"), || {
            black_box(CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap())
        });
        group.bench(&format!("lattice-crt/{count}"), || {
            black_box(CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap())
        });
    }
    bench.finish();
}
