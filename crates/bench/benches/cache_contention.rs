//! Cache-contention bench: concurrent hit-path lookups/sec through the
//! sharded plan cache vs the legacy single-mutex store.
//!
//! The serving regime the ROADMAP targets — many interpreted scripts per
//! process — turns every statement into a handful of plan-cache lookups.
//! Before the sharded store, all of them funneled through one global
//! `Mutex<Vec>` with an O(n) linear scan, serializing exactly the fast
//! path the paper makes fast. This bench pins the claim with an A/B:
//!
//! * `sharded`  — [`ShardedCache`] at the process-default shard count
//!   (`next_pow2(4 × cores)`, or `BCAG_CACHE_SHARDS` when set);
//! * `sharded1` — the same store at one shard, i.e. what
//!   `BCAG_CACHE_SHARDS=1` gives the process-global cache (one lock
//!   domain, still hash-probed and read-mostly);
//! * `mutex`    — an in-bench replica of the pre-sharding store: one
//!   `Mutex` around a `Vec` of entries, linear key scan, stamp LRU.
//!
//! Each store is warmed with every key, then hammered with uniformly
//! distributed hit-path lookups from 1/8/32 driver threads (the
//! `traffic` bench's driver-count axis). Keys are schedule-shaped
//! tuples so the `mutex` baseline pays realistic comparison costs.
//! Two working-set scales run: `default` (capacity 128, 96 keys — the
//! out-of-the-box store) and `serving` (capacity 1024, 768 keys — a
//! multi-tenant process where 32 scripts each keep dozens of statement
//! shapes warm, capacity raised via `BCAG_SCHED_CACHE_CAP` as a serving
//! deployment would). The serving scale is where the legacy store's
//! O(n) scan-under-one-lock compounds with contention; the hash-probed
//! sharded store stays O(1) per lookup at both scales.
//! The report (`BENCH_cache.json`, schema `bcag-cache/v1`) carries
//! lookups/sec per (scale, store, threads) plus the headline
//! `speedup_at_32 = sharded / mutex` at serving scale that CI gates on.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use bcag_harness::bench::default_report_dir;
use bcag_harness::hash::next_pow2;
use bcag_harness::json::Json;
use bcag_harness::rng::Rng;
use bcag_spmd::cache::ShardedCache;

/// Schedule-shaped key: `(p, k_a, sec_a, k_b, sec_b, method)`.
type Key = (i64, i64, (i64, i64, i64), i64, (i64, i64, i64), u8);
type Value = Arc<Vec<u64>>;

fn key_of(i: usize) -> Key {
    let i = i as i64;
    (
        32,
        8,
        (i, 384 + i, 3),
        5,
        (i + 1, 385 + i, 3),
        (i % 2) as u8,
    )
}

/// The value a build produces: big enough that a plan is not free, small
/// enough that the bench measures lookup, not memcpy.
fn build_value(i: usize) -> Value {
    Arc::new((0..256).map(|j| (i as u64) * 1000 + j).collect())
}

/// Replica of the pre-sharding store: `Mutex<Vec>` with a linear scan
/// and stamp-LRU bookkeeping on every hit — the legacy baseline.
struct MutexVecCache {
    entries: Mutex<(Vec<(Key, Value, u64)>, u64)>,
    capacity: usize,
}

impl MutexVecCache {
    fn new(capacity: usize) -> MutexVecCache {
        MutexVecCache {
            entries: Mutex::new((Vec::new(), 0)),
            capacity,
        }
    }

    fn get_or_build(&self, key: Key, build: impl FnOnce() -> Value) -> Value {
        {
            let mut guard = self.entries.lock().unwrap();
            let (entries, tick) = &mut *guard;
            *tick += 1;
            let stamp = *tick;
            if let Some(pos) = entries.iter().position(|(k, _, _)| *k == key) {
                entries[pos].2 = stamp;
                return entries[pos].1.clone();
            }
        }
        let value = build();
        let mut guard = self.entries.lock().unwrap();
        let (entries, tick) = &mut *guard;
        *tick += 1;
        let stamp = *tick;
        if let Some(pos) = entries.iter().position(|(k, _, _)| *k == key) {
            return entries[pos].1.clone();
        }
        if entries.len() >= self.capacity {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty at capacity");
            entries.swap_remove(oldest);
        }
        entries.push((key, value.clone(), stamp));
        value
    }
}

/// One store under test, behind a uniform lookup entry point.
enum Store {
    Sharded(ShardedCache<Key, Value>),
    Mutex(MutexVecCache),
}

impl Store {
    fn lookup(&self, i: usize) -> Value {
        match self {
            Store::Sharded(s) => {
                s.get_or_try_build(key_of(i), || Ok::<_, ()>(build_value(i)))
                    .unwrap()
                    .value
            }
            Store::Mutex(m) => m.get_or_build(key_of(i), || build_value(i)),
        }
    }
}

/// Hammers `store` with hit-path lookups over `keys` distinct keys from
/// `threads` drivers; returns (total lookups, wall ns). Each worker
/// clocks its own span after the barrier release and the wall is
/// `max(end) - min(start)` — timing from the orchestrating thread would
/// under-count whenever the scheduler runs the released workers to
/// completion before waking it.
fn hammer(store: &Store, keys: usize, threads: usize, lookups_per_thread: usize) -> (u64, u64) {
    let gate = std::sync::Barrier::new(threads);
    let spans: Vec<(Instant, Instant)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gate = &gate;
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(0xcac4e + t as u64);
                    gate.wait(); // line up, then measure from the release
                    let start = Instant::now();
                    for _ in 0..lookups_per_thread {
                        let i = rng.random_range(0..keys as i64) as usize;
                        std::hint::black_box(store.lookup(i));
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let start = spans.iter().map(|(s, _)| *s).min().expect("threads >= 1");
    let end = spans.iter().map(|(_, e)| *e).max().expect("threads >= 1");
    let wall_ns = (end - start).as_nanos() as u64;
    ((threads * lookups_per_thread) as u64, wall_ns.max(1))
}

/// One working-set scale: (label, store capacity, distinct keys). Keys
/// stay under capacity so the timed phase is pure hit path — the regime
/// a read-mostly serving cache lives in.
const SCALES: [(&str, usize, usize); 2] = [
    // The out-of-the-box store (`DEFAULT_CAPACITY`), one script's shapes.
    ("default", 128, 96),
    // Multi-tenant serving: 32 scripts × dozens of statement shapes,
    // capacity raised via BCAG_SCHED_CACHE_CAP as a deployment would.
    ("serving", 1024, 768),
];
/// The CI floor on `speedup_at_32` (serving scale).
const MIN_SPEEDUP_AT_32: f64 = 4.0;

fn main() {
    let mut quick = false;
    let mut json_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => json_path = args.next().map(Into::into),
            "--bench" => {}
            other => eprintln!("cache_contention: ignoring unknown argument {other:?}"),
        }
    }
    let lookups_per_thread = if quick { 4_000 } else { 40_000 };
    let thread_counts = [1usize, 8, 32];
    let default_shards = match std::env::var("BCAG_CACHE_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => next_pow2(n),
        _ => next_pow2(
            4 * std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        ),
    };

    let mut rows = Vec::new();
    let mut rates: Vec<(&str, &str, usize, f64)> = Vec::new();
    for &(scale, capacity, keys) in &SCALES {
        let stores: Vec<(&str, Store)> = vec![
            (
                "sharded",
                Store::Sharded(ShardedCache::new(capacity, default_shards)),
            ),
            ("sharded1", Store::Sharded(ShardedCache::new(capacity, 1))),
            ("mutex", Store::Mutex(MutexVecCache::new(capacity))),
        ];
        // Warm every key so the timed phase measures the hit path.
        for (_, store) in &stores {
            for i in 0..keys {
                let _ = store.lookup(i);
            }
        }
        for (name, store) in &stores {
            for &threads in &thread_counts {
                let (lookups, wall_ns) = hammer(store, keys, threads, lookups_per_thread);
                let rate = lookups as f64 / (wall_ns as f64 / 1e9);
                println!(
                    "{scale:>8} {name:>8} threads={threads:<2} {:>12.0} lookups/sec",
                    rate
                );
                rates.push((scale, name, threads, rate));
                rows.push(Json::obj(vec![
                    ("scale", Json::Str(scale.into())),
                    ("capacity", Json::Int(capacity as i64)),
                    ("keys", Json::Int(keys as i64)),
                    ("store", Json::Str((*name).into())),
                    ("threads", Json::Int(threads as i64)),
                    ("lookups", Json::Int(lookups as i64)),
                    ("wall_ns", Json::Int(wall_ns as i64)),
                    ("lookups_per_sec", Json::Num(rate)),
                ]));
            }
        }
    }

    let rate_of = |scale: &str, name: &str, threads: usize| {
        rates
            .iter()
            .find(|(sc, n, t, _)| *sc == scale && *n == name && *t == threads)
            .map(|(_, _, _, r)| *r)
            .expect("measured")
    };
    let max_threads = *thread_counts.last().expect("thread counts");
    let speedup_at_32 =
        rate_of("serving", "sharded", max_threads) / rate_of("serving", "mutex", max_threads);
    let speedup_default =
        rate_of("default", "sharded", max_threads) / rate_of("default", "mutex", max_threads);
    println!(
        "sharded vs mutex at {max_threads} threads: {speedup_at_32:.1}x serving, \
         {speedup_default:.1}x default (shards={default_shards})"
    );

    let report = Json::obj(vec![
        ("schema", Json::Str("bcag-cache/v1".into())),
        ("bench", Json::Str("cache_contention".into())),
        ("quick", Json::Bool(quick)),
        ("shards", Json::Int(default_shards as i64)),
        ("lookups_per_thread", Json::Int(lookups_per_thread as i64)),
        ("rows", Json::Arr(rows)),
        ("speedup_at_32", Json::Num(speedup_at_32)),
        ("speedup_at_32_default_scale", Json::Num(speedup_default)),
        (
            "slo",
            Json::obj(vec![
                ("min_speedup_at_32", Json::Num(MIN_SPEEDUP_AT_32)),
                (
                    "speedup_within_slo",
                    Json::Bool(speedup_at_32 >= MIN_SPEEDUP_AT_32),
                ),
            ]),
        ),
    ]);
    let path = json_path.unwrap_or_else(|| default_report_dir().join("cache_contention.json"));
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&path, report.to_pretty_string()).expect("write report");
    println!("cache_contention: report -> {}", path.display());
}
