//! Ablation A1: comparison sort vs radix sort inside the Chatterjee et al.
//! baseline.
//!
//! The paper (Section 6.1) notes its baseline implementation switched to a
//! linear-time radix sort for `k >= 64`, which flattens the Lattice/Sorting
//! ratio to a constant; with an in-place comparison sort the gap would keep
//! widening. The stride families `s = pk − 1` and `s = pk + 1` feed the
//! sort reverse-sorted and already-sorted inputs (the paper's "perhaps
//! unusual cases").

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

fn main() {
    let mut bench = Bench::from_env("sorting_ablation");
    let p = 32i64;
    for (name, stride_of) in [
        ("s7", Box::new(|_k: i64| 7i64) as Box<dyn Fn(i64) -> i64>),
        ("pk-1", Box::new(move |k| p * k - 1)),
        ("pk+1", Box::new(move |k| p * k + 1)),
    ] {
        let mut group = bench.group(&format!("sorting_ablation_{name}"));
        for k in [64i64, 256, 512] {
            let problem = Problem::new(p, k, 0, stride_of(k)).unwrap();
            group.bench(&format!("comparison/{k}"), || {
                black_box(build(&problem, 31, Method::SortingComparison).unwrap())
            });
            group.bench(&format!("radix/{k}"), || {
                black_box(build(&problem, 31, Method::SortingRadix).unwrap())
            });
            group.bench(&format!("lattice/{k}"), || {
                black_box(build(&problem, 31, Method::Lattice).unwrap())
            });
        }
    }
    bench.finish();
}
