//! Ablation A1: comparison sort vs radix sort inside the Chatterjee et al.
//! baseline.
//!
//! The paper (Section 6.1) notes its baseline implementation switched to a
//! linear-time radix sort for `k >= 64`, which flattens the Lattice/Sorting
//! ratio to a constant; with an in-place comparison sort the gap would keep
//! widening. The stride families `s = pk − 1` and `s = pk + 1` feed the
//! sort reverse-sorted and already-sorted inputs (the paper's "perhaps
//! unusual cases").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

fn bench_sorts(c: &mut Criterion) {
    let p = 32i64;
    for (name, stride_of) in [
        ("s7", Box::new(|_k: i64| 7i64) as Box<dyn Fn(i64) -> i64>),
        ("pk-1", Box::new(move |k| p * k - 1)),
        ("pk+1", Box::new(move |k| p * k + 1)),
    ] {
        let mut group = c.benchmark_group(format!("sorting_ablation_{name}"));
        for k in [64i64, 256, 512] {
            let problem = Problem::new(p, k, 0, stride_of(k)).unwrap();
            group.bench_with_input(BenchmarkId::new("comparison", k), &k, |b, _| {
                b.iter(|| black_box(build(&problem, 31, Method::SortingComparison).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("radix", k), &k, |b, _| {
                b.iter(|| black_box(build(&problem, 31, Method::SortingRadix).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("lattice", k), &k, |b, _| {
                b.iter(|| black_box(build(&problem, 31, Method::Lattice).unwrap()))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
