//! Criterion confirmation of Table 1: table-construction time vs `k` for
//! the lattice method and the sorting baseline (`s = 7` and `s = 99`,
//! `p = 32`, one processor's full construction per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

fn bench_construction(c: &mut Criterion) {
    let p = 32i64;
    for s_fixed in [7i64, 99] {
        let mut group = c.benchmark_group(format!("construction_s{s_fixed}"));
        for k in [4i64, 16, 64, 256, 512] {
            let problem = Problem::new(p, k, 0, s_fixed).unwrap();
            let m = p - 1; // a representative processor, as in the paper's max
            group.bench_with_input(BenchmarkId::new("lattice", k), &k, |b, _| {
                b.iter(|| black_box(build(&problem, m, Method::Lattice).unwrap()))
            });
            group.bench_with_input(BenchmarkId::new("sorting", k), &k, |b, _| {
                b.iter(|| black_box(build(&problem, m, Method::SortingAuto).unwrap()))
            });
            if bcag_core::hiranandani::applicable(&problem) {
                group.bench_with_input(BenchmarkId::new("hiranandani", k), &k, |b, _| {
                    b.iter(|| black_box(build(&problem, m, Method::Hiranandani).unwrap()))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
