//! Confirmation of Table 1: table-construction time vs `k` for the lattice
//! method and the sorting baseline (`s = 7` and `s = 99`, `p = 32`, one
//! processor's full construction per iteration). Runs on the in-repo
//! [`bcag_harness::bench`] engine; the JSON report is the source of the
//! committed `BENCH_construction.json` perf-trajectory snapshot.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

fn main() {
    let mut bench = Bench::from_env("construction");
    let p = 32i64;
    for s_fixed in [7i64, 99] {
        let mut group = bench.group(&format!("construction_s{s_fixed}"));
        for k in [4i64, 16, 64, 256, 512] {
            let problem = Problem::new(p, k, 0, s_fixed).unwrap();
            let m = p - 1; // a representative processor, as in the paper's max
            group.bench(&format!("lattice/{k}"), || {
                black_box(build(&problem, m, Method::Lattice).unwrap())
            });
            group.bench(&format!("sorting/{k}"), || {
                black_box(build(&problem, m, Method::SortingAuto).unwrap())
            });
            if bcag_core::hiranandani::applicable(&problem) {
                group.bench(&format!("hiranandani/{k}"), || {
                    black_box(build(&problem, m, Method::Hiranandani).unwrap())
                });
            }
        }
    }
    bench.finish();
}
