//! Pack/unpack throughput: run-coalesced vs per-element buffer filling.
//!
//! Each measurement packs every node's share of one section (plans come
//! from the process-wide cache, so the timed region is the buffer fill
//! alone, not table construction). Packed elements/sec is
//! `count / median_ns * 1e9` from the report. The sweep crosses element
//! type {i64, u8, [f64;4]} × stride s ∈ {1, 2, k/2, k+1} × p ∈ {4, 32}
//! at k = 512:
//!
//! * `s = 1` — the fully-contiguous case: each node's share is one
//!   `extend_from_slice` per course;
//! * `s = 2` — constant wide gaps (every gap is 2): the case a strict
//!   gap-1 notion of "run" would miss entirely;
//! * `s = k/2` — two elements per course, short runs;
//! * `s = k + 1` — every gap differs from its neighbor within a period:
//!   runs degenerate to singletons and the two modes must tie (parity
//!   guard: coalescing costs nothing when there is nothing to coalesce).

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_spmd::pack::{pack_with_buf_mode, unpack_mode};
use bcag_spmd::{DistArray, PackMode, PackValue};

const K: i64 = 512;

/// One (type, p, s) sweep cell: both pack modes over all nodes' shares.
fn bench_type<T: PackValue + Default>(
    bench: &mut Bench,
    label: &str,
    p: i64,
    s: i64,
    make: impl Fn(i64) -> T,
) {
    // Scale the section so the source array stays cache-resident as the
    // stride grows: the cell isolates the buffer-fill strategy, not DRAM
    // bandwidth (both modes touch identical bytes, so a DRAM-bound cell
    // saturates to a bandwidth tie). The mode comparison is within a
    // cell, so cells need not share counts.
    let count = (262_144 / s).max(1024);
    let sec = RegularSection::new(0, s * (count - 1), s).unwrap();
    let n = sec.normalized().hi + 1;
    let data: Vec<T> = (0..n).map(make).collect();
    let arr = DistArray::from_global(p, K, &data).unwrap();
    let mut buf: Vec<T> = Vec::new();
    let mut group = bench.group(&format!("pack_p{p}_s{s}"));
    for mode in [PackMode::Runs, PackMode::PerElement] {
        group.bench(&format!("{}/{label}/n{count}", mode.name()), || {
            let mut total = 0usize;
            for m in 0..p {
                total +=
                    pack_with_buf_mode(&arr, &sec, m, Method::Lattice, mode, &mut buf).unwrap();
            }
            black_box(total)
        });
    }
}

/// Unpack twin of the i64 cell: fill each node's share back from a
/// pre-packed buffer.
fn bench_unpack(bench: &mut Bench, p: i64, s: i64) {
    let count = (262_144 / s).max(1024);
    let sec = RegularSection::new(0, s * (count - 1), s).unwrap();
    let n = sec.normalized().hi + 1;
    let data: Vec<i64> = (0..n).collect();
    let arr = DistArray::from_global(p, K, &data).unwrap();
    let packs: Vec<Vec<i64>> = (0..p)
        .map(|m| bcag_spmd::pack::pack(&arr, &sec, m, Method::Lattice).unwrap())
        .collect();
    let mut dst = DistArray::new(p, K, n, 0i64).unwrap();
    let mut group = bench.group(&format!("unpack_p{p}_s{s}"));
    for mode in [PackMode::Runs, PackMode::PerElement] {
        group.bench(&format!("{}/i64/n{count}", mode.name()), || {
            for (m, buf) in packs.iter().enumerate() {
                unpack_mode(&mut dst, &sec, m as i64, Method::Lattice, mode, buf).unwrap();
            }
            black_box(dst.local(0).len())
        });
    }
}

fn main() {
    let mut bench = Bench::from_env("pack_throughput");
    for p in [4i64, 32] {
        for s in [1i64, 2, K / 2, K + 1] {
            bench_type::<i64>(&mut bench, "i64", p, s, |i| i);
            bench_type::<u8>(&mut bench, "u8", p, s, |i| i as u8);
            bench_type::<[f64; 4]>(&mut bench, "f64x4", p, s, |i| [i as f64; 4]);
            bench_unpack(&mut bench, p, s);
        }
    }
    bench.finish();
}
