//! Statement launch latency: resident worker pool vs per-call scope.
//!
//! The cost under the microscope is the *fixed* per-statement overhead —
//! thread spawn/join, channel fabric construction, message-buffer
//! allocation — which dominates exactly when statements are small and
//! numerous (the steady-state inner loop of a data-parallel program).
//! Each `stmt` measurement times one complete [`assign_expr`] statement
//! (a gather launch plus a compute launch) on a deliberately tiny
//! section, pooled vs scoped; statements/sec is `1e9 / median_ns`.
//!
//! The `xfer` group is the guard in the other direction: a large dense
//! batched transfer (mirroring `comm_throughput`'s heaviest case) where
//! launch overhead is noise, pinning that routing through the pool does
//! not tax bulk data movement.

use std::hint::black_box;

use bcag_harness::bench::Bench;

use bcag_core::section::RegularSection;
use bcag_spmd::{assign_expr, pool, CommSchedule, DistArray, ExecMode, LaunchMode};

/// One tiny statement `A(0:c-1) = B(1:c) + 1` across two blockings, so
/// every call pays a communication launch and a compute launch.
fn bench_statements(bench: &mut Bench, p: i64, k: i64) {
    let c = p * k;
    let n = c + 1;
    let sec_a = RegularSection::new(0, c - 1, 1).unwrap();
    let sec_b = RegularSection::new(1, c, 1).unwrap();
    let bg: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b = DistArray::from_global(p, k + 1, &bg).unwrap();
    let mut group = bench.group(&format!("stmt/p{p}/k{k}"));
    for launch in [LaunchMode::Pooled, LaunchMode::Scoped] {
        // `assign_expr` builds its machine from the process default; the
        // schedule cache and (when pooled) the resident pool mean the
        // timed region is pure steady-state after the first iteration.
        pool::set_default_launch(launch);
        if launch == LaunchMode::Pooled {
            pool::warm(p);
        }
        let mut a = DistArray::new(p, k, n, 0.0f64).unwrap();
        group.bench(&format!("{}/assign", launch.name()), || {
            assign_expr(&mut a, &sec_a, &[(&b, sec_b)], |v| v[0] + 1.0).unwrap();
            black_box(a.local(0).len())
        });
    }
}

/// Large-transfer parity: `cyclic(8) = cyclic(3)` dense redistribution of
/// 100k i64, batched, where data movement dwarfs launch cost.
fn bench_transfer(bench: &mut Bench, p: i64) {
    let count = 100_000i64;
    let (k_a, k_b) = (8i64, 3i64);
    let sec_a = RegularSection::new(2, 2 + count - 1, 1).unwrap();
    let sec_b = RegularSection::new(1, 1 + count - 1, 1).unwrap();
    let n_a = sec_a.normalized().hi + 1;
    let n_b = sec_b.normalized().hi + 1;
    let bg: Vec<i64> = (0..n_b).collect();
    let b = DistArray::from_global(p, k_b, &bg).unwrap();
    let sched = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
    let mut group = bench.group(&format!("xfer/p{p}"));
    for launch in [LaunchMode::Pooled, LaunchMode::Scoped] {
        if launch == LaunchMode::Pooled {
            pool::warm(p);
        }
        let mut a = DistArray::new(p, k_a, n_a, 0i64).unwrap();
        group.bench(&format!("{}/i64/dense/n100000", launch.name()), || {
            sched
                .execute_launched(&mut a, &b, ExecMode::Batched, launch)
                .unwrap();
            black_box(a.local(0).len())
        });
    }
}

fn main() {
    let mut bench = Bench::from_env("exec_latency");
    for p in [4i64, 32] {
        for k in [4i64, 64] {
            bench_statements(&mut bench, p, k);
        }
        bench_transfer(&mut bench, p);
    }
    bench.finish();
}
