//! Table 1 / Figure 7: table-construction time, Lattice vs Sorting.
//!
//! Paper setup (Section 6.1): `p = 32`, `l = 0`, block sizes
//! `k ∈ {4, 8, ..., 512}` (powers of two), strides
//! `s ∈ {7, 99, k+1, pk−1, pk+1}` — the last two produce reverse-sorted and
//! properly-sorted first cycles, stressing the baseline's sort. Every
//! processor runs the complete table-construction algorithm; the reported
//! time is the maximum over the 32 processors. Figure 7 plots the `s = 7`
//! column of the same data.

use std::time::Duration;

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;

use crate::timing::{as_micros, best_of_batched, max_over_procs};

/// The paper's processor count.
pub const PAPER_P: i64 = 32;
/// The paper's block sizes.
pub const PAPER_KS: [i64; 8] = [4, 8, 16, 32, 64, 128, 256, 512];

/// One stride family of Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrideSpec {
    /// Fixed stride 7.
    S7,
    /// Fixed stride 99.
    S99,
    /// `s = k + 1`.
    KPlus1,
    /// `s = pk − 1` (reverse-sorted first cycle).
    PkMinus1,
    /// `s = pk + 1` (properly sorted first cycle).
    PkPlus1,
}

impl StrideSpec {
    /// All five stride families, in the paper's column order.
    pub const ALL: [StrideSpec; 5] = [
        StrideSpec::S7,
        StrideSpec::S99,
        StrideSpec::KPlus1,
        StrideSpec::PkMinus1,
        StrideSpec::PkPlus1,
    ];

    /// Column header as printed in the paper.
    pub fn label(&self) -> &'static str {
        match self {
            StrideSpec::S7 => "s=7",
            StrideSpec::S99 => "s=99",
            StrideSpec::KPlus1 => "s=k+1",
            StrideSpec::PkMinus1 => "s=pk-1",
            StrideSpec::PkPlus1 => "s=pk+1",
        }
    }

    /// Resolves the concrete stride for `(p, k)`.
    pub fn stride(&self, p: i64, k: i64) -> i64 {
        match self {
            StrideSpec::S7 => 7,
            StrideSpec::S99 => 99,
            StrideSpec::KPlus1 => k + 1,
            StrideSpec::PkMinus1 => p * k - 1,
            StrideSpec::PkPlus1 => p * k + 1,
        }
    }
}

/// Measured cell: construction time for one `(k, s)` with one method,
/// maximum over processors of best-of-`reps` per-processor times.
pub fn measure_construction(p: i64, k: i64, s: i64, method: Method, reps: usize) -> Duration {
    let problem = Problem::new(p, k, 0, s).expect("valid parameters");
    // Batch fast configurations so timer resolution does not dominate.
    let batch = if k <= 64 { 64 } else { 8 };
    let times: Vec<Duration> = (0..p)
        .map(|m| best_of_batched(reps, batch, || build(&problem, m, method).unwrap()))
        .collect();
    max_over_procs(&times)
}

/// One row of Table 1: a block size with all five stride columns, for both
/// methods.
#[derive(Debug, Clone)]
pub struct Row {
    /// Block size `k`.
    pub k: i64,
    /// `(lattice, sorting)` microseconds per stride family, in
    /// [`StrideSpec::ALL`] order.
    pub cells: Vec<(f64, f64)>,
}

/// Runs the full Table 1 grid.
pub fn run(p: i64, ks: &[i64], reps: usize) -> Vec<Row> {
    ks.iter()
        .map(|&k| {
            let cells = StrideSpec::ALL
                .iter()
                .map(|spec| {
                    let s = spec.stride(p, k);
                    let lattice = as_micros(measure_construction(p, k, s, Method::Lattice, reps));
                    let sorting =
                        as_micros(measure_construction(p, k, s, Method::SortingAuto, reps));
                    (lattice, sorting)
                })
                .collect();
            Row { k, cells }
        })
        .collect()
}

/// Prints the rows in the paper's layout (µs, Lattice vs Sorting per
/// stride family).
pub fn print_table(p: i64, rows: &[Row]) {
    println!("Table 1: execution times in microseconds (p = {p}, max over processors)");
    print!("{:>8} ", "Block");
    for spec in StrideSpec::ALL {
        print!("| {:^21} ", spec.label());
    }
    println!();
    print!("{:>8} ", "size");
    for _ in StrideSpec::ALL {
        print!("| {:>10} {:>10} ", "Lattice", "Sorting");
    }
    println!();
    for row in rows {
        print!("{:>8} ", format!("k={}", row.k));
        for (lat, srt) in &row.cells {
            print!("| {lat:>10.2} {srt:>10.2} ");
        }
        println!();
    }
}

/// Emits the Figure 7 series (the `s = 7` column) as CSV:
/// `k,lattice_us,sorting_us`.
pub fn figure7_csv(rows: &[Row]) -> String {
    let mut out = String::from("k,lattice_us,sorting_us\n");
    for row in rows {
        let (lat, srt) = row.cells[0]; // StrideSpec::S7 is column 0
        out.push_str(&format!("{},{:.3},{:.3}\n", row.k, lat, srt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_specs_resolve() {
        assert_eq!(StrideSpec::S7.stride(32, 64), 7);
        assert_eq!(StrideSpec::KPlus1.stride(32, 64), 65);
        assert_eq!(StrideSpec::PkMinus1.stride(32, 64), 2047);
        assert_eq!(StrideSpec::PkPlus1.stride(32, 64), 2049);
    }

    #[test]
    fn measurement_produces_positive_times() {
        let d = measure_construction(4, 16, 7, Method::Lattice, 2);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn small_grid_runs() {
        let rows = run(4, &[4, 8], 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cells.len(), 5);
        let csv = figure7_csv(&rows);
        assert!(csv.starts_with("k,lattice_us,sorting_us\n"));
        assert_eq!(csv.lines().count(), 3);
    }
}
