//! Table 2: node-code execution time for the four code shapes of Figure 8.
//!
//! Paper setup (Section 6.2): `p = 32`, `l = 0`, upper bound scaled in
//! proportion to the stride so that every configuration performs the same
//! number of memory accesses — 10,000 assigned elements per processor.
//! Grid: `k ∈ {4, 32, 256}`, `s ∈ {3, 15, 99}`; the statement is
//! `A(l:u:s) = 100.0`. The reported time is the traversal loop only (table
//! construction is excluded — it was measured in Table 1), max over
//! processors.

use std::time::Duration;

use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::timing::{as_micros, max_over_procs};
use bcag_spmd::assign::plan_section;
use bcag_spmd::codeshapes::{traverse, CodeShape};
use bcag_spmd::darray::DistArray;

/// The paper's Table 2 block sizes.
pub const PAPER_KS: [i64; 3] = [4, 32, 256];
/// The paper's Table 2 strides.
pub const PAPER_SS: [i64; 3] = [3, 15, 99];
/// Elements assigned per processor in the paper's runs.
pub const PAPER_ELEMS_PER_PROC: i64 = 10_000;

/// One measured cell: traversal time for a `(k, s)` pair and a shape.
#[derive(Debug, Clone)]
pub struct Row {
    /// Block size `k`.
    pub k: i64,
    /// Stride `s`.
    pub s: i64,
    /// Microseconds per shape, in [`CodeShape::ALL`] order.
    pub shape_us: [f64; 4],
}

/// Measures one `(k, s)` cell: every processor traverses its share of
/// `A(0 : u : s) = 100.0` with each shape; per-shape result is the max over
/// processors of the best-of-`reps` traversal time.
///
/// Node loops touch only their own local memory and are independent, so
/// each simulated node's traversal is timed *serially* — on a host with
/// fewer cores than simulated processors, concurrent timing would measure
/// scheduler wait instead of the node program. (Functional SPMD execution
/// still uses `bcag_spmd::machine::Machine`; see `bcag_spmd::assign`.)
pub fn measure_cell(p: i64, k: i64, s: i64, elems_per_proc: i64, reps: usize) -> Row {
    // Scale the upper bound with the stride so each processor performs
    // ~elems_per_proc assignments (the paper's methodology).
    let total_elems = elems_per_proc * p;
    let u = s * (total_elems - 1);
    let n = u + 1;
    let section = RegularSection::new(0, u, s).unwrap();
    let mut arr = DistArray::new(p, k, n, 0.0f32).unwrap();
    let plans = plan_section(p, k, &section, Method::Lattice).unwrap();

    let mut shape_us = [0.0f64; 4];
    for (si, shape) in CodeShape::ALL.into_iter().enumerate() {
        let mut per_proc = vec![Duration::MAX; p as usize];
        for (m, best) in per_proc.iter_mut().enumerate() {
            let plan = &plans[m];
            let Some(start) = plan.start else {
                *best = Duration::ZERO;
                continue;
            };
            let tables = plan.tables.as_ref().expect("plan tables");
            let local = arr.local_mut(m as i64);
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                traverse(
                    shape,
                    local,
                    start,
                    plan.last,
                    &plan.delta_m,
                    tables,
                    &plan.runs,
                    |x| *x = 100.0,
                );
                *best = (*best).min(t0.elapsed());
            }
        }
        shape_us[si] = as_micros(max_over_procs(&per_proc));
    }
    Row { k, s, shape_us }
}

/// Runs the full Table 2 grid.
pub fn run(p: i64, ks: &[i64], ss: &[i64], elems_per_proc: i64, reps: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &k in ks {
        for &s in ss {
            rows.push(measure_cell(p, k, s, elems_per_proc, reps));
        }
    }
    rows
}

/// Prints the rows in the paper's layout.
pub fn print_table(p: i64, elems: i64, rows: &[Row]) {
    println!(
        "Table 2: node-code execution times in microseconds \
         (p = {p}, {elems} elements/processor, max over processors)"
    );
    println!(
        "{:>8} {:>6} | {:>10} {:>10} {:>10} {:>10}",
        "", "", "8(a)", "8(b)", "8(c)", "8(d)"
    );
    for row in rows {
        println!(
            "{:>8} {:>6} | {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            format!("k={}", row.k),
            format!("s={}", row.s),
            row.shape_us[0],
            row.shape_us[1],
            row.shape_us[2],
            row.shape_us[3],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cell_measures() {
        let row = measure_cell(4, 8, 3, 100, 2);
        assert_eq!(row.k, 8);
        assert!(row.shape_us.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn traversal_actually_assigns() {
        // Cross-check the measured path against semantics: after a cell
        // measurement the section must hold 100.0 everywhere.
        let p = 2;
        let (k, s, elems) = (4, 3, 50);
        let _ = measure_cell(p, k, s, elems, 1);
        // measure_cell consumes its own array; replicate the setup to check.
        let total = elems * p;
        let u = s * (total - 1);
        let section = RegularSection::new(0, u, s).unwrap();
        let mut arr = DistArray::new(p, k, u + 1, 0.0f32).unwrap();
        bcag_spmd::assign::assign_scalar(
            &mut arr,
            &section,
            100.0,
            Method::Lattice,
            CodeShape::TwoTableLoop,
        )
        .unwrap();
        let g = arr.to_global();
        for i in 0..=u {
            let expect = if i % s == 0 { 100.0 } else { 0.0 };
            assert_eq!(g[i as usize], expect, "i={i}");
        }
    }
}
