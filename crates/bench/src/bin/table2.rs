//! Regenerates the paper's **Table 2**: node-code execution time in
//! microseconds for the four code shapes of Figure 8, with 10,000 assigned
//! elements per processor, `p = 32`, `k ∈ {4, 32, 256}`, `s ∈ {3, 15, 99}`.
//!
//! Usage:
//! ```text
//! table2 [--quick] [--reps N] [--p N] [--elems N]
//! ```

use bcag_bench::table2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut p = 32i64;
    let mut elems = table2::PAPER_ELEMS_PER_PROC;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
            }
            "--p" => {
                p = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--p needs a positive integer"));
            }
            "--elems" => {
                elems = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--elems needs a positive integer"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    if quick {
        p = p.min(8);
        elems = elems.min(2_000);
        reps = reps.min(3);
    }

    let rows = table2::run(p, &table2::PAPER_KS, &table2::PAPER_SS, elems, reps);
    table2::print_table(p, elems, &rows);
    println!();
    println!("Paper (iPSC/860) for comparison (k=4,s=3): 8(a)=18086 8(b)=3219 8(c)=3096 8(d)=2291");
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: table2 [--quick] [--reps N] [--p N] [--elems N]");
    std::process::exit(2);
}
