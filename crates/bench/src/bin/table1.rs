//! Regenerates the paper's **Table 1** (and, with `--figure7`, the CSV
//! series behind **Figure 7**): table-construction time in microseconds,
//! Lattice vs Sorting, `p = 32`, `k ∈ {4..512}`, five stride families,
//! maximum over the 32 simulated processors.
//!
//! Usage:
//! ```text
//! table1 [--quick] [--figure7] [--reps N] [--p N]
//! ```

use bcag_bench::table1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 20usize;
    let mut p = table1::PAPER_P;
    let mut quick = false;
    let mut figure7 = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--figure7" => figure7 = true,
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--reps needs a positive integer"));
            }
            "--p" => {
                p = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--p needs a positive integer"));
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let ks: Vec<i64> = if quick {
        vec![4, 16, 64, 256]
    } else {
        table1::PAPER_KS.to_vec()
    };
    if quick {
        reps = reps.min(5);
    }

    let rows = table1::run(p, &ks, reps);
    if figure7 {
        print!("{}", table1::figure7_csv(&rows));
    } else {
        table1::print_table(p, &rows);
        println!();
        println!("Paper (iPSC/860) for comparison, s=7 column, k=4..512:");
        println!(
            "  Lattice: 48 58 60 83 122 183 332 614   Sorting: 56 82 138 286 775 1384 2708 5550"
        );
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: table1 [--quick] [--figure7] [--reps N] [--p N]");
    std::process::exit(2);
}
