//! Quick text report of the ablations A1–A4 from DESIGN.md (the Criterion
//! benches give the statistically robust version; this binary prints a
//! one-screen summary in seconds).
//!
//! Usage: `ablations [--reps N]`

use std::time::Duration;

use bcag_bench::timing::{as_micros, best_of};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::walker::Walker;
use bcag_spmd::comm::CommSchedule;

fn main() {
    let mut reps = 50usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                reps = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs a positive integer");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let p = 32i64;

    println!("== A1: sort choice inside the Chatterjee baseline (µs, proc 31) ==");
    println!(
        "{:>6} {:>10} | {:>10} {:>10} {:>10}",
        "k", "stride", "lattice", "cmp-sort", "radix"
    );
    for k in [64i64, 256, 512] {
        for (label, s) in [("7", 7i64), ("pk-1", p * k - 1), ("pk+1", p * k + 1)] {
            let problem = Problem::new(p, k, 0, s).unwrap();
            let t = |method: Method| -> f64 {
                as_micros(best_of(reps, || build(&problem, 31, method).unwrap()))
            };
            println!(
                "{:>6} {:>10} | {:>10.2} {:>10.2} {:>10.2}",
                k,
                label,
                t(Method::Lattice),
                t(Method::SortingComparison),
                t(Method::SortingRadix)
            );
        }
    }

    println!("\n== A2: table-free walker vs stored-table traversal (µs, 10k accesses) ==");
    println!(
        "{:>6} {:>6} | {:>12} {:>12}",
        "k", "s", "walker", "table-8(b)"
    );
    for (k, s) in [(32i64, 15i64), (256, 99)] {
        let accesses = 10_000i64;
        let u = s * accesses * p;
        let problem = Problem::new(p, k, 0, s).unwrap();
        let m = p - 1;
        let pat = build(&problem, m, Method::Lattice).unwrap();
        let walker_t = best_of(reps.min(10), || {
            let w = Walker::new(&problem, m).unwrap();
            let mut acc = 0i64;
            for a in w.up_to(u) {
                acc = acc.wrapping_add(a.local);
            }
            acc
        });
        let gaps = pat.gaps().to_vec();
        let last = pat.last_local(u).unwrap().unwrap_or(-1);
        let start = pat.start_local().unwrap_or(0);
        let table_t = best_of(reps.min(10), || {
            let mut acc = 0i64;
            let mut base = start;
            let mut i = 0usize;
            while base <= last {
                acc = acc.wrapping_add(base);
                base += gaps[i];
                i += 1;
                if i == gaps.len() {
                    i = 0;
                }
            }
            acc
        });
        println!(
            "{:>6} {:>6} | {:>12.1} {:>12.1}",
            k,
            s,
            as_micros(walker_t),
            as_micros(table_t)
        );
    }

    println!("\n== A3: effect of d = gcd(s, pk) at k=256 (µs, proc 31) ==");
    println!(
        "{:>8} {:>6} {:>8} | {:>10} {:>10}",
        "s", "d", "tbl len", "lattice", "sorting"
    );
    for s in [3i64, 4, 32, 96, 128] {
        let problem = Problem::new(p, 256, 0, s).unwrap();
        let pat = build(&problem, 31, Method::Lattice).unwrap();
        let lat = as_micros(best_of(reps, || {
            build(&problem, 31, Method::Lattice).unwrap()
        }));
        let srt = as_micros(best_of(reps, || {
            build(&problem, 31, Method::SortingAuto).unwrap()
        }));
        println!(
            "{:>8} {:>6} {:>8} | {:>10.2} {:>10.2}",
            s,
            problem.d(),
            pat.len(),
            lat,
            srt
        );
    }

    println!("\n== A5: effect of varying p at fixed k (paper: \"only minor\") ==");
    println!("{:>6} | {:>10} {:>10}", "p", "lattice", "sorting");
    for pp in [2i64, 8, 32, 128, 512] {
        let problem = Problem::new(pp, 64, 0, 7).unwrap();
        let lat = as_micros(best_of(reps, || {
            build(&problem, pp - 1, Method::Lattice).unwrap()
        }));
        let srt = as_micros(best_of(reps, || {
            build(&problem, pp - 1, Method::SortingAuto).unwrap()
        }));
        println!("{:>6} | {:>10.2} {:>10.2}", pp, lat, srt);
    }

    println!("\n== A6: enumeration schemes (µs, 10k accesses; §7 related work) ==");
    println!(
        "{:>6} {:>6} | {:>12} {:>14} {:>13}",
        "k", "s", "lattice", "virt-cyclic", "virt-block"
    );
    for (k, s) in [(32i64, 15i64), (256, 99)] {
        use bcag_core::virtual_views::{lattice_order, virtual_block, virtual_cyclic};
        let problem = Problem::new(p, k, 0, s).unwrap();
        let m = p - 1;
        let u = s * 10_000 * p;
        let r = reps.min(5);
        let lat = as_micros(best_of(r, || lattice_order(&problem, m, u).unwrap()));
        let vc = as_micros(best_of(r, || virtual_cyclic(&problem, m, u).unwrap()));
        let vb = as_micros(best_of(r, || virtual_block(&problem, m, u).unwrap()));
        println!(
            "{:>6} {:>6} | {:>12.1} {:>14.1} {:>13.1}",
            k, s, lat, vc, vb
        );
    }

    println!("\n== A4: comm schedule, enumeration vs lattice/CRT (µs) ==");
    println!(
        "{:>10} | {:>12} {:>12}",
        "elements", "enumerated", "lattice-crt"
    );
    for count in [100i64, 1_000, 10_000, 100_000] {
        let pp = 8i64;
        let sec_a = RegularSection::new(2, 2 + (count - 1) * 4, 4).unwrap();
        let sec_b = RegularSection::new(1, 1 + (count - 1) * 4, 4).unwrap();
        let r = reps.min(10);
        let enumerated: Duration = best_of(r, || {
            CommSchedule::build(pp, 8, &sec_a, 3, &sec_b, Method::Lattice).unwrap()
        });
        let lattice: Duration = best_of(r, || {
            CommSchedule::build_lattice(pp, 8, &sec_a, 3, &sec_b).unwrap()
        });
        println!(
            "{:>10} | {:>12.1} {:>12.1}",
            count,
            as_micros(enumerated),
            as_micros(lattice)
        );
    }
}
