//! # bcag-bench — harness regenerating the paper's evaluation
//!
//! One module per experiment:
//!
//! * [`table1`] — Table 1 and Figure 7: table-construction time, Lattice vs
//!   Sorting, `p = 32`, `k ∈ {4..512}`, five stride families, reporting the
//!   maximum over the 32 (simulated) processors;
//! * [`table2`] — Table 2: node-code execution time for the four shapes of
//!   Figure 8, 10,000 assigned elements per processor;
//! * [`timing`] — the shared measurement discipline (best-of-N).
//!
//! The binaries `table1` and `table2` print rows in the paper's format;
//! Criterion benches under `benches/` provide statistically robust
//! confirmation plus the ablations called out in `DESIGN.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod table1;
pub mod table2;
pub mod timing;
