//! Measurement discipline shared by the table-regeneration binaries.
//!
//! The paper reports single microsecond figures per configuration
//! ("maximums over all 32 processors", `dclock` timer). We reproduce the
//! statistic: each processor's computation is timed as the *minimum over
//! `reps` repetitions* (minimum is the standard noise-robust estimator for
//! deterministic code), and the reported figure is the *maximum over
//! processors* of those minima.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times one closure: minimum duration over `reps` runs, with the result of
/// each run passed through [`black_box`] so the optimizer cannot delete the
/// work.
pub fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

/// Batched variant for very fast closures: each sample executes the closure
/// `batch` times and the per-call duration is `elapsed / batch`.
pub fn best_of_batched<R>(reps: usize, batch: u32, mut f: impl FnMut() -> R) -> Duration {
    assert!(reps > 0 && batch > 0);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        best = best.min(t0.elapsed() / batch);
    }
    best
}

/// The paper's statistic: maximum over processors of per-processor times.
pub fn max_over_procs(times: &[Duration]) -> Duration {
    times.iter().copied().max().unwrap_or(Duration::ZERO)
}

/// Formats a duration as fractional microseconds (the unit of Tables 1/2).
pub fn as_micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_a_measurement() {
        let d = best_of(3, || (0..1000).sum::<u64>());
        assert!(d > Duration::ZERO);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn batched_is_finite() {
        let d = best_of_batched(3, 100, || 1 + 1);
        assert!(d < Duration::from_millis(10));
    }

    #[test]
    fn max_over_procs_picks_max() {
        let times = [
            Duration::from_micros(3),
            Duration::from_micros(9),
            Duration::from_micros(1),
        ];
        assert_eq!(max_over_procs(&times), Duration::from_micros(9));
        assert_eq!(max_over_procs(&[]), Duration::ZERO);
    }

    #[test]
    fn micros_formatting() {
        assert!((as_micros(Duration::from_micros(250)) - 250.0).abs() < 1e-9);
    }
}
